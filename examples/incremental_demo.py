"""Incremental completion demo: a live database, refreshed in place.

Walks the mutation → recompletion → fine-tune → hot-swap story end to end:

1. fit a completion engine on a biased housing dataset and save the
   fitted state as a **v1 artifact**,
2. apply live mutations (``apply_mutations``: inserts, in-place updates,
   cascading deletes) — the engine maps the resulting
   :class:`~repro.incremental.MutationDelta` through the relationship
   graph and evicts only the affected chunks,
3. ``recomplete(delta)`` — re-walk just those chunks; the rest of the
   completed join reassembles from the partial cache, bitwise-identical
   to a from-scratch run at the same seed,
4. ``check_drift`` / ``fine_tune`` — compare today's encoded
   distributions against the fit baseline and warm-start re-train only
   when the digest actually moved,
5. save a **v2 artifact with lineage** (parent digest + delta metadata),
   verify it against its parent, and hot-swap a running
   :class:`~repro.serving.ServingCore` from v1 to v2 without dropping
   the old engine until the new one is validated.

Run with ``python examples/incremental_demo.py``.
"""

import tempfile
from pathlib import Path

from repro import ReStore, ReStoreConfig, parse_query
from repro.core import ModelConfig
from repro.datasets import HousingConfig, generate_housing
from repro.incomplete import RemovalSpec, make_incomplete
from repro.nn import TrainConfig
from repro.serving import ServingCore, artifact_lineage, verify_lineage

QUERY = "SELECT AVG(price) FROM apartment;"


def train_and_save(artifact_dir: Path) -> ReStore:
    db = generate_housing(HousingConfig(seed=0))
    dataset = make_incomplete(
        db,
        [RemovalSpec("apartment", "price", keep_rate=0.5,
                     removal_correlation=0.5)],
        tf_keep_rate=0.3, seed=1,
    )
    config = ReStoreConfig(
        model=ModelConfig(
            train=TrainConfig(epochs=12, batch_size=256, lr=5e-3, patience=4),
        ),
        chunk_size=4,
    )
    engine = ReStore.from_dataset(dataset, config).fit()
    engine.save_artifact(artifact_dir, scenario="housing/demo")
    print(f"v1 saved: AVG(price) = "
          f"{engine.answer(parse_query(QUERY)).result.scalar:.1f}")
    return engine


def mutate_and_recomplete(engine: ReStore):
    # warm the caches, then mutate the live database in place
    cold = engine.recomplete()
    total = cold.recompletion["chunks_total"]

    # in-place updates keep the chunk grid stable, so invalidation stays
    # local: only the chunks covering the mutated rows are evicted
    landlord = engine.db.table("landlord")
    delta = engine.apply_mutations(
        updates={"landlord": [
            {"id": int(landlord["id"][0]),
             "landlord_response_rate":
                 float(landlord["landlord_response_rate"][0]) * 0.5},
            {"id": int(landlord["id"][9]),
             "landlord_since":
                 float(landlord["landlord_since"][9]) + 1.0},
        ]},
    )
    print("\nmutation delta:")
    for table in delta.affected_tables():
        td = delta.for_table(table)
        print(f"  {table}: +{len(td.inserted)} rows, "
              f"~{len(td.updated)} updated, -{len(td.deleted)} deleted "
              f"(grid stable: {td.grid_stable})")

    warm = engine.recomplete(delta)
    prov = warm.recompletion
    print(f"recomplete walked {prov['chunks_walked']}/{total} chunks "
          f"({prov['chunks_cached']} served from the partial cache)")
    return delta


def refresh_models(engine: ReStore) -> None:
    report = engine.check_drift()
    print(f"\ndrift: max TV distance {report.max_drift:.4f} "
          f"→ recommendation '{report.recommendation}'")
    outcome = engine.fine_tune()
    if outcome["skipped"]:
        print("fine-tune skipped: database digest unchanged (exact no-op)")
    else:
        print(f"fine-tuned {outcome['models_tuned']} models "
              f"(warm start from the fitted weights)")


def save_upgrade(engine: ReStore, parent: Path, child: Path, delta) -> None:
    engine.save_artifact(child, scenario="housing/demo",
                         parent=parent, delta=delta)
    lineage = artifact_lineage(child)
    print(f"\nv2 saved with lineage: parent digest "
          f"{lineage['parent_digest'][:12]}…, "
          f"delta over {sorted(lineage['delta'])}")
    verify_lineage(child, parent_path=parent)
    print("lineage verified against the v1 artifact")


def hot_swap(v1: Path, v2: Path) -> None:
    core = ServingCore(ReStore.load(v1))
    before = core.submit(QUERY).result.scalar
    info = core.hot_swap(v2)
    after = core.submit(QUERY).result.scalar
    print(f"\nhot swap v1 → v2 ({info['scenario']}): "
          f"AVG(price) {before:.1f} → {after:.1f}, "
          f"swaps counted: {core.stats().swaps}")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        v1 = Path(tmp) / "housing-v1"
        v2 = Path(tmp) / "housing-v2"
        engine = train_and_save(v1)
        delta = mutate_and_recomplete(engine)
        refresh_models(engine)
        save_upgrade(engine, v1, v2, delta)
        hot_swap(v1, v2)


if __name__ == "__main__":
    main()
