"""Fleet demo: one artifact, N worker processes, one ``submit``.

The multi-process end of ReStore's train-once / query-many story:

1. fit a small completion engine and save a versioned artifact,
2. spawn a 2-worker :class:`~repro.serving.FleetRouter` from it — each
   worker process loads its own engine replica and serves the
   length-prefixed wire protocol,
3. hit the fleet with concurrent clients: identical in-flight queries
   route to the same worker while cold, so the whole fleet computes
   exactly **one** incompleteness join; warm traffic spreads across
   every worker,
4. read one aggregated :meth:`~repro.serving.FleetRouter.stats`
   snapshot: router-observed latency percentiles plus each worker
   core's counters.

Run with ``python examples/fleet_demo.py``.
"""

import asyncio
import tempfile
from pathlib import Path

from repro import ReStore, ReStoreConfig
from repro.core import ModelConfig
from repro.datasets import HousingConfig, generate_housing
from repro.incomplete import RemovalSpec, make_incomplete
from repro.nn import TrainConfig
from repro.serving import FleetConfig, FleetRouter, ServiceConfig

COMPLETION_SQL = (
    "SELECT AVG(price) FROM neighborhood NATURAL JOIN apartment "
    "GROUP BY state;"
)
SPREAD_SQL = (
    "SELECT AVG(price) FROM neighborhood NATURAL JOIN apartment "
    "WHERE price < {threshold} GROUP BY state;"
)


def train_and_save(artifact_dir: Path) -> None:
    db = generate_housing(HousingConfig(seed=0, num_neighborhoods=60,
                                        num_landlords=350))
    dataset = make_incomplete(
        db,
        [RemovalSpec("apartment", "price", keep_rate=0.5,
                     removal_correlation=0.5)],
        tf_keep_rate=0.3, seed=1,
    )
    config = ReStoreConfig(model=ModelConfig(
        train=TrainConfig(epochs=10, batch_size=256, lr=5e-3, patience=3),
    ))
    engine = ReStore.from_dataset(dataset, config).fit()
    engine.save_artifact(artifact_dir)
    print(f"saved artifact to {artifact_dir}")


async def serve_fleet(artifact_dir: Path) -> None:
    config = FleetConfig(
        n_workers=2,
        worker=ServiceConfig(max_queue=32, max_batch=16, n_workers=2),
    )
    async with FleetRouter(artifact_dir, config) as fleet:
        # 12 identical concurrent clients on a cold fleet: the router
        # pins them to one worker, whose core computes ONE join.
        answers = await asyncio.gather(
            *(fleet.submit(COMPLETION_SQL) for _ in range(12))
        )
        print(f"\n12 identical concurrent queries -> "
              f"{len(set(repr(sorted(a.result.values.items())) for a in answers))} "
              f"distinct answer(s)")

        # Warm traffic with varied predicates spreads over both workers.
        await asyncio.gather(*(
            fleet.submit(SPREAD_SQL.format(threshold=800 + 10 * i))
            for i in range(24)
        ))

        stats = await fleet.stats()
        print(f"\nfleet of {stats.workers} workers:")
        print(f"  requests={stats.requests} completed={stats.completed} "
              f"failed={stats.failed} shed={stats.shed}")
        print(f"  router p50={stats.p50_latency_ms:.1f} ms "
              f"p95={stats.p95_latency_ms:.1f} ms")
        print(f"  joins started (fleet-wide): {stats.joins_started}")
        print(f"{'worker':>8s} {'completed':>10s} {'joins':>6s} "
              f"{'coalesced':>10s} {'p50 ms':>8s}")
        for i, w in enumerate(stats.per_worker):
            print(f"{i:8d} {w['completed']:10d} {w['joins_started']:6d} "
                  f"{w['coalesced_requests']:10d} "
                  f"{w['p50_latency_ms']:8.2f}")
    print("\nfleet drained and shut down cleanly")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        artifact_dir = Path(tmp) / "housing-artifact"
        train_and_save(artifact_dir)
        asyncio.run(serve_fleet(artifact_dir))


if __name__ == "__main__":
    main()
