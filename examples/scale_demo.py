"""Scale tier walkthrough: complete a larger-than-comfortable database
without ever materializing it.

The pipeline in four steps, each memory-bounded:

1. **Generate out of core** — the counter-based scale generator streams
   an SF-1 database (~100k sites, ~170k surviving readings after MCAR
   removal) straight into a memory-mapped column store; no full table
   ever exists in RAM.
2. **Train on a slice** — every row is a pure function of (seed,
   lineage), so a 2000-root prefix of the *same universe* is regenerated
   in RAM for cheap model fitting.  The capped fan-out vocabulary makes
   the small model's weights transplant onto the big layout unchanged.
3. **Stream the incompleteness join** — chunked walk over the mapped
   root table, each completed chunk spilled to disk, the assembled
   result store-backed.  Peak RSS tracks the chunk size, not the table.
4. **Query the completed join** — the weighted result corrects the
   aggregate that incompleteness biased.

Run with ``python examples/scale_demo.py`` (a few seconds at the default
SF 1; raise ``SCALE_FACTOR`` to 10 for the ~1M-root tier, where
``benchmarks/bench_scale.py`` asserts the peak-RSS bound).
"""

import tempfile
import time

from repro.core import (
    ARCompletionModel,
    IncompletenessJoin,
    ModelConfig,
    PathLayout,
    build_encoders,
)
from repro.datasets import ScaleConfig, generate_scale_incomplete
from repro.datasets.scale import fan_outs, scale_training_slice
from repro.nn import TrainConfig
from repro.obs import current_rss_bytes, peak_rss_bytes, reset_peak_rss
from repro.relational import CompletionPath

SCALE_FACTOR = 1.0


def main() -> None:
    cfg = ScaleConfig(scale_factor=SCALE_FACTOR, seed=0)
    path = CompletionPath(("site", "reading"))

    with tempfile.TemporaryDirectory() as workdir:
        # -- 1. generate straight into the mapped store ----------------
        t0 = time.perf_counter()
        db, annotation = generate_scale_incomplete(
            cfg, spill_dir=f"{workdir}/db"
        )
        rows = len(db.table("site")) + len(db.table("reading"))
        print(f"generated {rows:,} rows out of core "
              f"in {time.perf_counter() - t0:.1f}s "
              f"(mapped: {all(t.is_mapped for t in db.tables.values())})")

        # -- 2. fit on a regenerated in-RAM prefix ---------------------
        t0 = time.perf_counter()
        slice_cfg = scale_training_slice(cfg, 2000)
        train_db, train_ann = generate_scale_incomplete(slice_cfg)
        config = ModelConfig(
            hidden=(24, 24),
            train=TrainConfig(epochs=6, batch_size=256, lr=1e-2, patience=3),
        )
        small = ARCompletionModel(
            PathLayout(train_db, train_ann, path,
                       build_encoders(train_db, num_bins=8),
                       tf_cap=cfg.fan_out_cap),
            config,
        )
        small.fit()
        model = ARCompletionModel(
            PathLayout(db, annotation, path, build_encoders(db, num_bins=8),
                       tf_cap=cfg.fan_out_cap),
            config,
        )
        model.load_state_dict(small.state_dict())
        model.mark_fitted_from_artifact()
        print(f"trained on a {slice_cfg.num_roots}-root slice and "
              f"transplanted in {time.perf_counter() - t0:.1f}s")

        # -- 3. stream the join, watching peak RSS ---------------------
        base = current_rss_bytes()
        reset_peak_rss()
        t0 = time.perf_counter()
        completed = IncompletenessJoin(
            model, seed=0, chunk_size=8192, spill_dir=f"{workdir}/join"
        ).run()
        seconds = time.perf_counter() - t0
        delta = max(0, peak_rss_bytes() - base)
        print(f"streaming join: {completed.num_rows:,} rows in {seconds:.1f}s "
              f"({completed.num_rows / seconds:,.0f} rows/s), "
              f"peak RSS +{delta / 1e6:.0f}MB "
              f"(database materialized: {db.nbytes_materialized() / 1e6:.0f}MB; "
              f"the peak tracks chunk size, not SF)")

        # -- 4. the completed estimate vs truth and raw evidence -------
        weights = completed.result.effective_weights()
        true_total = int(fan_outs(cfg, 0, cfg.num_roots).sum())
        observed = len(db.table("reading"))
        estimate = float(weights.sum())
        print(f"COUNT(reading): true {true_total:,}, observed {observed:,} "
              f"({observed / true_total:.0%}), completed estimate "
              f"{estimate:,.0f} ({estimate / true_total:.0%})")


if __name__ == "__main__":
    main()
