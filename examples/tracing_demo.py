"""Tracing demo: where does one fleet query's latency go?

The full :mod:`repro.obs` loop on a live 2-worker fleet:

1. fit a small housing completion engine and save an artifact,
2. enable tracing, spawn a :class:`~repro.serving.FleetRouter`, and
   submit one housing query — the router's submit span rides the wire,
   the worker's spans (batch formation, single-flight join, engine
   answer, per-chunk walks) ship back in the answer frame, and the
   router stitches everything into ONE cross-process trace tree,
3. print the human latency-breakdown table (:func:`repro.obs.report`),
4. export Chrome-trace JSON — drag it into https://ui.perfetto.dev (or
   ``chrome://tracing``) to see the same tree on a timeline, one row
   per process/thread,
5. print the metrics-registry snapshot and the fleet's structured
   lifecycle log lines (spawn → ready → drain).

Run with ``python examples/tracing_demo.py``.
"""

import asyncio
import tempfile
from pathlib import Path

import repro.obs as obs
from repro import ReStore, ReStoreConfig
from repro.core import ModelConfig
from repro.datasets import HousingConfig, generate_housing
from repro.incomplete import RemovalSpec, make_incomplete
from repro.nn import TrainConfig
from repro.serving import FleetConfig, FleetRouter, ServiceConfig

HOUSING_SQL = (
    "SELECT AVG(price) FROM neighborhood NATURAL JOIN apartment "
    "GROUP BY state;"
)


def train_and_save(artifact_dir: Path) -> None:
    db = generate_housing(HousingConfig(seed=0, num_neighborhoods=60,
                                        num_landlords=350))
    dataset = make_incomplete(
        db,
        [RemovalSpec("apartment", "price", keep_rate=0.5,
                     removal_correlation=0.5)],
        tf_keep_rate=0.3, seed=1,
    )
    config = ReStoreConfig(model=ModelConfig(
        train=TrainConfig(epochs=10, batch_size=256, lr=5e-3, patience=3),
    ))
    engine = ReStore.from_dataset(dataset, config).fit()
    engine.save_artifact(artifact_dir)
    print(f"saved artifact to {artifact_dir}")


async def traced_query(artifact_dir: Path, trace_path: Path) -> None:
    obs.enable_tracing()
    config = FleetConfig(
        n_workers=2,
        worker=ServiceConfig(max_queue=32, max_batch=16, n_workers=2),
    )
    async with FleetRouter(artifact_dir, config) as fleet:
        answer = await fleet.submit(HOUSING_SQL)
        print(f"\nanswer ({len(answer.result.values)} groups): "
              f"{dict(list(sorted(answer.result.values.items()))[:3])} ...")

    # --- 1. the latency-breakdown table ------------------------------
    print("\nwhere did the latency go?\n")
    print(obs.report())

    # --- 2. Chrome-trace JSON for Perfetto ---------------------------
    doc = obs.export_chrome_trace(trace_path)
    problems = obs.validate_chrome_trace(doc)
    spans = obs.get_tracer().spans()
    print(f"exported {len(doc['traceEvents'])} trace events "
          f"({len(spans)} spans across "
          f"{len({s.pid for s in spans})} processes) -> {trace_path}")
    print(f"validation problems: {problems or 'none'}")
    print("open https://ui.perfetto.dev and drag the file in")

    # --- 3. metrics registry snapshot --------------------------------
    stats = None
    for span in spans:
        if span.name == "fleet.submit":
            stats = span
    print(f"\nrouter submit span: {stats.duration_us / 1000.0:.1f} ms "
          f"on worker {stats.attrs.get('worker')}")

    # --- 4. structured lifecycle log ---------------------------------
    print("\nfleet lifecycle (structured log, JSON lines):")
    for record in obs.recent_records(logger="serving.fleet"):
        fields = {k: v for k, v in record.items()
                  if k not in ("ts", "level", "logger")}
        print(f"  {record['level']:>7s}  {fields}")
    obs.disable_tracing()


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        artifact_dir = Path(tmp) / "housing-artifact"
        train_and_save(artifact_dir)
        trace_path = Path("fleet-trace.json")
        asyncio.run(traced_query(artifact_dir, trace_path))


if __name__ == "__main__":
    main()
