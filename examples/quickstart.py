"""Quickstart: complete a biased housing database and query it.

Walks the full ReStore loop on the synthetic Airbnb-style dataset:

1. generate a complete ground-truth database,
2. remove apartments with a price-correlated bias (the expensive listings
   disappear, as in the paper's motivating example),
3. annotate + train completion models,
4. answer aggregate queries on the completed data and compare against the
   incomplete data and the ground truth.

Run with ``python examples/quickstart.py``.
"""

from repro import ReStore, ReStoreConfig, parse_query
from repro.core import ModelConfig
from repro.datasets import HousingConfig, generate_housing
from repro.incomplete import RemovalSpec, make_incomplete
from repro.nn import TrainConfig
from repro.query import execute


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Ground truth + biased removal.
    # ------------------------------------------------------------------
    db = generate_housing(HousingConfig(seed=0))
    dataset = make_incomplete(
        db,
        [RemovalSpec(
            table="apartment",
            biased_attribute="price",
            keep_rate=0.5,               # half the apartments survive …
            removal_correlation=0.5,     # … and expensive ones vanish first
        )],
        tf_keep_rate=0.3,                # we know true counts for 30% of
        seed=1,                          # the neighborhoods
    )
    print(f"complete apartments:   {len(db.table('apartment'))}")
    print(f"incomplete apartments: {len(dataset.incomplete.table('apartment'))}")

    # ------------------------------------------------------------------
    # 2. Train completion models (AR + SSAR per admissible path).
    # ------------------------------------------------------------------
    config = ReStoreConfig(model=ModelConfig(
        train=TrainConfig(epochs=20, batch_size=256, lr=5e-3, patience=4),
    ))
    engine = ReStore.from_dataset(dataset, config).fit()
    print("\ncandidate completion models (higher signal = more predictive):")
    for candidate in engine.candidates("apartment"):
        print(f"  {candidate.describe()}")

    # ------------------------------------------------------------------
    # 3. Query: incomplete vs completed vs truth.
    # ------------------------------------------------------------------
    queries = [
        "SELECT AVG(price) FROM apartment;",
        "SELECT COUNT(*) FROM apartment;",
        "SELECT AVG(price) FROM neighborhood NATURAL JOIN apartment "
        "WHERE room_type = 'Entire home/apt';",
    ]
    print(f"\n{'query':70s} {'truth':>10s} {'incomplete':>11s} {'completed':>10s}")
    for sql in queries:
        query = parse_query(sql)
        truth = execute(db, query).scalar
        incomplete = execute(dataset.incomplete, query).scalar
        answer = engine.answer(query)
        print(f"{sql:70s} {truth:10.1f} {incomplete:11.1f} "
              f"{answer.result.scalar:10.1f}")

    # ------------------------------------------------------------------
    # 4. Confidence bands (paper §6).
    # ------------------------------------------------------------------
    answer = engine.answer(parse_query("SELECT AVG(price) FROM apartment;"))
    estimator = answer.confidence()
    band = estimator.average("price")
    print(f"\n95% confidence band for AVG(price): "
          f"[{band.lower:.1f}, {band.upper:.1f}] "
          f"(estimate {band.estimate:.1f}, "
          f"true {execute(db, parse_query('SELECT AVG(price) FROM apartment;')).scalar:.1f})")
    print(f"share of synthesized tuples: {estimator.synthesis_ratio():.1%}")


if __name__ == "__main__":
    main()
