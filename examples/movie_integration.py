"""Database-integration scenario: merging movie catalogs with missing films.

The paper's second application (§2.3): two film databases are merged; one
source never shipped its movie table, so after integration entire movies
are missing — and with them their m:n link rows to directors and companies.
ReStore completes the movie table *through* the incomplete link tables
(§4.3: repeated incompleteness joins) using the complete director / actor /
company tables as evidence.
"""


from repro import ReStore, ReStoreConfig, parse_query
from repro.core import ModelConfig
from repro.datasets import MoviesConfig, generate_movies
from repro.incomplete import RemovalSpec, make_incomplete
from repro.nn import TrainConfig
from repro.query import execute


def main() -> None:
    db = generate_movies(MoviesConfig(seed=3))

    # The lost source contributed mostly recent movies: the removal is
    # biased against high production years.
    dataset = make_incomplete(
        db,
        [RemovalSpec("movie", "production_year", keep_rate=0.5,
                     removal_correlation=0.6)],
        tf_keep_rate=0.2,
        drop_dangling_links=True,  # dangling movie_* link rows vanish too
        seed=3,
    )
    incomplete_tables = sorted(dataset.annotation.incomplete_tables)
    print(f"incomplete after integration: {incomplete_tables}")
    print(f"movies: {len(db.table('movie'))} true, "
          f"{len(dataset.incomplete.table('movie'))} available")

    engine = ReStore.from_dataset(dataset, ReStoreConfig(
        model=ModelConfig(
            hidden=(96, 96),
            train=TrainConfig(epochs=25, batch_size=256, lr=5e-3, patience=5),
        ),
        max_path_length=4,
    )).fit()

    print("\ncompletion paths discovered through the incomplete link tables:")
    for candidate in engine.candidates("movie"):
        print(f"  {candidate.describe()}")

    queries = [
        "SELECT COUNT(*) FROM movie;",
        "SELECT AVG(production_year) FROM movie;",
        "SELECT COUNT(*) FROM movie NATURAL JOIN movie_company "
        "NATURAL JOIN company WHERE country_code = '[us]';",
    ]
    print(f"\n{'query':75s} {'truth':>9s} {'naive':>9s} {'restored':>9s}")
    for sql in queries:
        query = parse_query(sql)
        truth = execute(db, query).scalar
        naive = execute(dataset.incomplete, query).scalar
        answer = engine.answer(query)
        print(f"{sql:75s} {truth:9.1f} {naive:9.1f} {answer.result.scalar:9.1f}")

    # Group-by query over the completed join.
    per_year = parse_query("SELECT COUNT(*) FROM movie GROUP BY genre;")
    truth = execute(db, per_year)
    answer = engine.answer(per_year)
    print("\nmovies per genre (truth vs restored):")
    for group in sorted(truth.groups()):
        restored = answer.result.values.get(group, 0.0)
        print(f"  {group[0]:14s} {truth[group]:6.0f} {restored:8.1f}")


if __name__ == "__main__":
    main()
