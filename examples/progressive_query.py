"""Progressive query answering: pushdown, budgets, streaming refinements.

Walks the query-driven partial-completion loop end to end on the housing
dataset:

1. fit a completion engine on a biased housing dataset,
2. answer a *selective* query with predicate pushdown and compare against
   full materialization — same answer, a fraction of the walk,
3. answer it progressively under a sampling budget: an early estimate with
   a confidence band after the first chunks, refined until exact,
4. stream the same refinements through the completion service with
   coalesced concurrent subscribers,
5. print the partial-cache and refinement statistics.

Run with ``python examples/progressive_query.py``.
"""

import asyncio
import time

import numpy as np

from repro import ReStore, ReStoreConfig, parse_query
from repro.core import ModelConfig, SamplingBudget
from repro.datasets import HousingConfig, generate_housing
from repro.incomplete import RemovalSpec, make_incomplete
from repro.nn import TrainConfig
from repro.serving import CompletionService


def fit_engine() -> ReStore:
    db = generate_housing(HousingConfig(seed=0))
    dataset = make_incomplete(
        db,
        [RemovalSpec("apartment", "price", keep_rate=0.5,
                     removal_correlation=0.5)],
        tf_keep_rate=0.3, seed=1,
    )
    config = ReStoreConfig(
        model=ModelConfig(
            train=TrainConfig(epochs=15, batch_size=256, lr=5e-3, patience=4),
        ),
        seed=3,
        chunk_size=4,  # one pinned grid for full, pushed and budgeted runs
    )
    return ReStore.from_dataset(dataset, config).fit()


def selective_sql(engine: ReStore) -> str:
    density = np.asarray(
        engine.db.table("neighborhood")["pop_density"], dtype=float
    )
    threshold = float(np.quantile(density, 0.9))
    return (
        "SELECT AVG(apartment.price) "
        "FROM neighborhood NATURAL JOIN apartment "
        f"WHERE neighborhood.pop_density >= {threshold:.1f}"
    )


def demo_pushdown(engine: ReStore, sql: str) -> None:
    print("== Predicate pushdown ==")
    query = parse_query(sql)

    engine.clear_cache()
    started = time.perf_counter()
    full = engine.answer(query)
    full_ms = (time.perf_counter() - started) * 1000.0

    engine.clear_cache()
    started = time.perf_counter()
    pushed = engine.answer(query, pushdown=True)
    pushed_ms = (time.perf_counter() - started) * 1000.0

    stats = pushed.pushdown
    print(f"full materialization: {full.result.scalar:10.2f}  ({full_ms:6.1f} ms)")
    print(f"pushed completion:    {pushed.result.scalar:10.2f}  ({pushed_ms:6.1f} ms)")
    print(f"bitwise identical:    {pushed.result.scalar == full.result.scalar}")
    print(f"roots walked:         {stats['roots_qualifying']}/{stats['roots_total']}"
          f"  chunks {stats['chunks_walked']}/{stats['chunks_total']}")
    print()


def demo_progressive(engine: ReStore, sql: str) -> None:
    print("== Progressive refinement (engine) ==")
    query = parse_query(sql)
    engine.clear_cache()
    for r in engine.answer_progressive(
        query, budget=SamplingBudget(initial_chunks=2)
    ):
        band = f"  ± {r.band.width / 2.0:8.2f}" if r.band else ""
        marker = "  <- exact" if r.final else ""
        print(f"chunks {r.chunks_completed:3d}/{r.chunks_total}: "
              f"{r.result.scalar:10.2f}{band}{marker}")
    print()


async def demo_service(engine: ReStore, sql: str) -> None:
    print("== Progressive streaming (service, 4 coalesced clients) ==")
    engine.clear_cache()

    async def client(service, name):
        last = None
        async for r in service.submit_progressive(
            sql, budget=SamplingBudget(initial_chunks=2)
        ):
            last = r
        return name, last.result.scalar, last.final

    async with CompletionService(engine) as service:
        results = await asyncio.gather(
            *(client(service, f"client-{i}") for i in range(4))
        )
        for name, value, final in results:
            print(f"{name}: final={final}  answer={value:.2f}")
        stats = service.stats().as_dict()
        print(f"progressive: {stats['progressive']}")
        print(f"partial cache: {stats['partial_cache']}")


def main() -> None:
    print("training completion models (once)...")
    engine = fit_engine()
    sql = selective_sql(engine)
    print(f"query: {sql}\n")
    demo_pushdown(engine, sql)
    demo_progressive(engine, sql)
    asyncio.run(demo_service(engine, sql))


if __name__ == "__main__":
    main()
