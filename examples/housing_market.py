"""Housing-market scenario: systematically missing apartment data.

The paper's motivating example (§1): a housing database covers all US
neighborhoods, but apartments from rich, dense areas are under-reported —
landlords there are less inclined to publish listings.  A naive analyst
querying the incomplete data underestimates rents badly.

This example shows:

* how the bias manifests per state,
* how the user's domain suspicion ("the average rent looks too low") feeds
  into model selection (§5),
* per-state answers on the completed database,
* the confidence report (§6) an analyst would attach to the numbers.
"""

import numpy as np

from repro import (
    BiasDirection,
    ReStore,
    ReStoreConfig,
    SuspectedBias,
    parse_query,
)
from repro.core import ModelConfig
from repro.datasets import HousingConfig, generate_housing
from repro.incomplete import RemovalSpec, make_incomplete
from repro.nn import TrainConfig
from repro.query import execute


def main() -> None:
    db = generate_housing(HousingConfig(seed=7))

    # Listings vanish preferentially where prices are high.
    dataset = make_incomplete(
        db,
        [RemovalSpec("apartment", "price", keep_rate=0.4,
                     removal_correlation=0.6)],
        tf_keep_rate=0.3,
        seed=7,
    )

    per_state = parse_query(
        "SELECT AVG(price) FROM neighborhood NATURAL JOIN apartment "
        "GROUP BY state;"
    )
    truth = execute(db, per_state)
    naive = execute(dataset.incomplete, per_state)

    print("per-state average rent, incomplete vs truth:")
    print(f"{'state':8s} {'truth':>8s} {'naive':>8s} {'bias':>8s}")
    for group in sorted(truth.groups()):
        t = truth[group]
        n = naive.values.get(group, float('nan'))
        print(f"{group[0]:8s} {t:8.1f} {n:8.1f} {n - t:+8.1f}")

    # The analyst suspects the average rent is underestimated.
    suspicion = SuspectedBias("price", BiasDirection.UNDERESTIMATED)

    engine = ReStore.from_dataset(dataset, ReStoreConfig(
        model=ModelConfig(
            hidden=(96, 96),
            train=TrainConfig(epochs=25, batch_size=256, lr=5e-3, patience=5),
        ),
    )).fit()

    answer = engine.answer(per_state, suspected_bias=suspicion)
    print(f"\nselected completion model: {answer.model.describe()}")

    print("\nper-state average rent after completion:")
    print(f"{'state':8s} {'truth':>8s} {'naive':>8s} {'restored':>9s}")
    improvements = []
    for group in sorted(truth.groups()):
        t = truth[group]
        n = naive.values.get(group, float("nan"))
        c = answer.result.values.get(group, float("nan"))
        improvements.append(abs(n - t) - abs(c - t))
        print(f"{group[0]:8s} {t:8.1f} {n:8.1f} {c:9.1f}")
    print(f"\nmean absolute error improvement per state: "
          f"{np.nanmean(improvements):+.1f} $/night")

    # Attach the §6 confidence report.
    estimator = answer.confidence()
    band = estimator.average("price")
    print(f"\nanalyst report: completed AVG(price) = {band.estimate:.1f}, "
          f"95% band [{band.lower:.1f}, {band.upper:.1f}]; "
          f"{estimator.synthesis_ratio():.0%} of the join is synthesized data")


if __name__ == "__main__":
    main()
