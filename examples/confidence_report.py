"""Confidence-interval deep dive (paper §6 / Fig. 6).

Shows how the tightness of ReStore's completion confidence bands tracks the
predictability of the missing data: when the evidence pins the missing
attribute down, the band collapses onto the estimate; when the evidence is
uninformative, the band widens toward the theoretical envelope.
"""

import numpy as np

from repro.core import (
    ARCompletionModel,
    ConfidenceEstimator,
    IncompletenessJoin,
    ModelConfig,
    PathLayout,
    build_encoders,
)
from repro.datasets import SyntheticConfig, generate_synthetic
from repro.incomplete import RemovalSpec, make_incomplete
from repro.nn import TrainConfig
from repro.relational import CompletionPath


def band_for(predictability: float, seed: int = 0):
    db = generate_synthetic(SyntheticConfig(
        num_parents=1500, predictability=predictability, seed=seed,
    ))
    dataset = make_incomplete(
        db, [RemovalSpec("tb", "b", keep_rate=0.5, removal_correlation=0.4)],
        tf_keep_rate=0.5, seed=seed,
    )
    layout = PathLayout(
        dataset.incomplete, dataset.annotation, CompletionPath(("ta", "tb")),
        build_encoders(dataset.incomplete, num_bins=16),
    )
    model = ARCompletionModel(layout, ModelConfig(
        train=TrainConfig(epochs=20, batch_size=256, lr=5e-3, patience=4),
    ))
    model.fit()
    completed = IncompletenessJoin(model, seed=seed).run()

    # Query the frequency of the most-deviating value (the hard case).
    uniques = np.unique(db.table("tb")["b"])
    deviations = [
        abs((db.table("tb")["b"] == v).mean()
            - (dataset.incomplete.table("tb")["b"] == v).mean())
        for v in uniques
    ]
    value = uniques[int(np.argmax(deviations))]
    true_fraction = (db.table("tb")["b"] == value).mean()
    band = ConfidenceEstimator(model, completed).count_fraction("b", value)
    return value, true_fraction, band


def main() -> None:
    print("95% confidence bands for COUNT(b = most-deviating value) / COUNT(*)")
    print(f"{'predictability':>14s} {'true':>7s} {'estimate':>9s} "
          f"{'band':>19s} {'width':>7s} {'covered':>8s}")
    for predictability in (0.2, 0.5, 0.8, 1.0):
        value, true_fraction, band = band_for(predictability)
        covered = band.contains(true_fraction)
        print(f"{predictability:14.0%} {true_fraction:7.1%} {band.estimate:9.1%} "
              f"[{band.lower:7.1%}, {band.upper:7.1%}] {band.width:7.1%} "
              f"{'yes' if covered else 'NO':>8s}")
    print("\nExpected shape (paper Fig. 6): bands always cover the true")
    print("fraction and tighten monotonically as predictability grows.")


if __name__ == "__main__":
    main()
