"""Serving demo: train once, save an artifact, serve queries at scale.

Walks ReStore's train-once / query-many story end to end:

1. fit a completion engine on a biased housing dataset,
2. ``save_artifact`` — persist the fitted engine (models, codecs, data,
   candidate rankings) to a versioned directory,
3. ``ReStore.load`` — reconstruct a ready-to-answer engine, as a fresh
   serving process would,
4. run a :class:`~repro.serving.CompletionService` over it and hit it
   with concurrent clients: identical in-flight queries coalesce into a
   single incompleteness join, and the stats show batch sizes, latency
   percentiles and the join-cache hit rate.

Run with ``python examples/serving_demo.py``.
"""

import asyncio
import tempfile
from pathlib import Path

from repro import ReStore, ReStoreConfig, parse_query
from repro.core import ModelConfig
from repro.datasets import HousingConfig, generate_housing
from repro.incomplete import RemovalSpec, make_incomplete
from repro.nn import TrainConfig
from repro.serving import CompletionService, ServiceConfig, read_manifest

QUERIES = [
    "SELECT AVG(price) FROM apartment;",
    "SELECT COUNT(*) FROM apartment;",
    "SELECT AVG(price) FROM neighborhood NATURAL JOIN apartment "
    "WHERE room_type = 'Entire home/apt';",
    "SELECT AVG(price) FROM neighborhood NATURAL JOIN apartment GROUP BY state;",
]


def train_and_save(artifact_dir: Path) -> None:
    db = generate_housing(HousingConfig(seed=0))
    dataset = make_incomplete(
        db,
        [RemovalSpec("apartment", "price", keep_rate=0.5,
                     removal_correlation=0.5)],
        tf_keep_rate=0.3, seed=1,
    )
    config = ReStoreConfig(model=ModelConfig(
        train=TrainConfig(epochs=20, batch_size=256, lr=5e-3, patience=4),
    ))
    engine = ReStore.from_dataset(dataset, config).fit()
    engine.save_artifact(artifact_dir)
    manifest = read_manifest(artifact_dir)
    print(f"saved artifact: format v{manifest['format_version']}, "
          f"repro {manifest['repro_version']}, seed {manifest['seed']}, "
          f"{manifest['num_models']} models")


async def serve(artifact_dir: Path) -> None:
    # A serving process starts here: no training, just the artifact.
    engine = ReStore.load(artifact_dir)
    in_memory = engine.answer(parse_query(QUERIES[0])).result.scalar
    print(f"loaded engine answers AVG(price) = {in_memory:.1f}")
    engine.clear_cache()

    async def client(service: CompletionService, client_id: int) -> None:
        for i in range(4):
            sql = QUERIES[(client_id + i) % len(QUERIES)]
            answer = await service.submit(sql)
            if i == 0 and client_id == 0:
                first = next(iter(answer.result.values.values()))
                print(f"  first answer ({sql[:40]}…): {first:.1f}")

    config = ServiceConfig(max_queue=32, max_batch=16, batch_window_ms=2.0)
    async with CompletionService(engine, config) as service:
        await asyncio.gather(*(client(service, i) for i in range(8)))
        stats = service.stats()

    print("\nservice stats after 8 concurrent clients x 4 queries:")
    print(f"  completed        : {stats.completed} "
          f"(failed {stats.failed}, rejected {stats.rejected})")
    print(f"  joins started    : {stats.joins_started} "
          f"(coalesced {stats.coalesced_requests} requests)")
    print(f"  batches          : {stats.batches} "
          f"(mean size {stats.mean_batch_size:.1f}, max {stats.max_batch_size})")
    print(f"  latency          : p50 {stats.p50_latency_ms:.1f} ms, "
          f"p95 {stats.p95_latency_ms:.1f} ms")
    print(f"  join cache       : hit rate {stats.cache['hit_rate']:.1%}")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        artifact_dir = Path(tmp) / "housing-artifact"
        train_and_save(artifact_dir)
        asyncio.run(serve(artifact_dir))


if __name__ == "__main__":
    main()
