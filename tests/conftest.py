"""Shared fixtures: small hand-built databases mirroring the paper's examples."""

import pytest

from repro.relational import ColumnKind, Database, ForeignKey, SchemaAnnotation, Table

K = ColumnKind.KEY
C = ColumnKind.CATEGORICAL
N = ColumnKind.CONTINUOUS


@pytest.fixture
def housing_mini() -> Database:
    """The running example of Fig. 1: neighborhood / apartment / landlord.

    Two neighborhoods (NYC with 2 apartments, CA with 3), three landlords.
    """
    neighborhood = Table(
        "neighborhood",
        {
            "id": [1, 2],
            "state": ["NYC", "CA"],
            "pop_density": [27000.0, 254.0],
        },
        {"id": K, "state": C, "pop_density": N},
    )
    apartment = Table(
        "apartment",
        {
            "id": [1, 2, 3, 4, 5],
            "neighborhood_id": [1, 1, 2, 2, 2],
            "landlord_id": [1, 2, 2, 3, 3],
            "rent": [2000.0, 3000.0, 3200.0, 2000.0, 1000.0],
            "room_type": ["entire", "private", "entire", "private", "private"],
        },
        {"id": K, "neighborhood_id": K, "landlord_id": K, "rent": N, "room_type": C},
    )
    landlord = Table(
        "landlord",
        {
            "id": [1, 2, 3],
            "age": [50.0, 60.0, 59.0],
        },
        {"id": K, "age": N},
    )
    return Database(
        [neighborhood, apartment, landlord],
        [
            ForeignKey("apartment", "neighborhood_id", "neighborhood"),
            ForeignKey("apartment", "landlord_id", "landlord"),
        ],
    )


@pytest.fixture
def housing_mini_annotation() -> SchemaAnnotation:
    return SchemaAnnotation(
        complete_tables={"neighborhood", "landlord"},
        incomplete_tables={"apartment"},
    )


@pytest.fixture
def star_db() -> Database:
    """A deeper chain: state -> neighborhood -> apartment, plus school fan-out."""
    state = Table(
        "state",
        {"id": [1, 2], "region": ["east", "west"]},
        {"id": K, "region": C},
    )
    neighborhood = Table(
        "neighborhood",
        {"id": [10, 11, 12], "state_id": [1, 1, 2], "density": [9.0, 5.0, 2.0]},
        {"id": K, "state_id": K, "density": N},
    )
    school = Table(
        "school",
        {"id": [100, 101, 102], "neighborhood_id": [10, 10, 12], "rating": [3.0, 4.0, 5.0]},
        {"id": K, "neighborhood_id": K, "rating": N},
    )
    apartment = Table(
        "apartment",
        {"id": [1000, 1001], "neighborhood_id": [10, 12], "rent": [1500.0, 900.0]},
        {"id": K, "neighborhood_id": K, "rent": N},
    )
    return Database(
        [state, neighborhood, school, apartment],
        [
            ForeignKey("neighborhood", "state_id", "state"),
            ForeignKey("school", "neighborhood_id", "neighborhood"),
            ForeignKey("apartment", "neighborhood_id", "neighborhood"),
        ],
    )
