"""One workload, three transports — the api_redesign contract test.

The same mixed workload (identical completion queries to coalesce,
complete-only queries, grouped queries, one invalid query) runs through:

* the synchronous :class:`ServingCore` directly (no event loop),
* the asyncio :class:`CompletionService` shell,
* a 2-worker :class:`FleetRouter` (``slow``: real processes + sockets),

and every transport must produce identical answers (up to row order),
truthful coalescing counters (sum(joins_started) == distinct signatures
actually joined), and a clean shutdown with zero dropped in-flight
requests.
"""

import asyncio
from pathlib import Path

import pytest

from repro import ReStore, ReStoreConfig, parse_query
from repro.core import ModelConfig
from repro.incomplete.registry import make_scenario_dataset
from repro.nn import TrainConfig
from repro.serving import (
    CompletionService,
    FleetConfig,
    FleetRouter,
    ServiceConfig,
    ServingCore,
    save_artifact,
)

FAST = TrainConfig(epochs=3, batch_size=128, lr=1e-2, patience=2)

COMPLETION_SQL = "SELECT COUNT(*) FROM ta NATURAL JOIN tb WHERE b = 'v1';"
COMPLETE_ONLY_SQL = "SELECT COUNT(*) FROM ta;"
GROUPED_SQL = "SELECT COUNT(*) FROM ta NATURAL JOIN tb GROUP BY a;"

#: (sql, multiplicity) — multiplicity > 1 exercises coalescing.
WORKLOAD = [
    (COMPLETION_SQL, 6),
    (COMPLETE_ONLY_SQL, 2),
    (GROUPED_SQL, 2),
]

SERVICE_CONFIG = ServiceConfig(max_queue=32, n_workers=2)


@pytest.fixture(scope="module")
def artifact(tmp_path_factory) -> Path:
    dataset = make_scenario_dataset(
        "synthetic/biased", keep_rate=0.5, seed=1, scale=0.2
    )
    config = ReStoreConfig(model=ModelConfig(train=FAST), seed=3)
    engine = ReStore.from_dataset(dataset, config).fit()
    path = tmp_path_factory.mktemp("equiv") / "artifact"
    save_artifact(engine, path, scenario="synthetic/biased")
    return path


@pytest.fixture(scope="module")
def expected(artifact):
    engine = ReStore.load(artifact)
    return {
        sql: sorted(engine.answer(parse_query(sql)).result.values)
        for sql, _n in WORKLOAD
    }


def _flat_workload():
    return [sql for sql, n in WORKLOAD for _ in range(n)]


def _run_core(artifact):
    core = ServingCore(ReStore.load(artifact), SERVICE_CONFIG)
    answers = {}
    for sql in _flat_workload():
        answers.setdefault(sql, []).append(core.submit(sql))
    with pytest.raises(ValueError):
        core.submit("SELECT AVG(nope) FROM ta;")
    return answers, core.stats().as_dict()


def _run_service(artifact):
    engine = ReStore.load(artifact)

    async def main():
        async with CompletionService(engine, SERVICE_CONFIG) as service:
            results = await service.submit_many(_flat_workload())
            with pytest.raises(ValueError):
                await service.submit("SELECT AVG(nope) FROM ta;")
            stats = service.stats().as_dict()
        answers = {}
        for sql, answer in zip(_flat_workload(), results):
            answers.setdefault(sql, []).append(answer)
        return answers, stats

    return asyncio.run(main())


def _run_fleet(artifact):
    async def main():
        config = FleetConfig(n_workers=2, worker=SERVICE_CONFIG)
        async with FleetRouter(artifact, config) as fleet:
            results = await fleet.submit_many(_flat_workload())
            with pytest.raises(ValueError):
                await fleet.submit("SELECT AVG(nope) FROM ta;")
            stats = await fleet.stats()
        answers = {}
        for sql, answer in zip(_flat_workload(), results):
            answers.setdefault(sql, []).append(answer)
        merged = stats.as_dict()
        # Roll the per-worker cores up to the service-stats vocabulary.
        merged["requests"] = stats.requests
        merged["completed"] = stats.completed
        # Zero dropped in-flight: every worker answered all it accepted.
        assert sum(
            s["completed"] for s in fleet.final_worker_stats
        ) == stats.completed
        return answers, merged

    return asyncio.run(main())


RUNNERS = {
    "core": _run_core,
    "service": _run_service,
    "fleet": pytest.param(_run_fleet, marks=pytest.mark.slow),
}


@pytest.mark.parametrize(
    "runner", RUNNERS.values(), ids=RUNNERS.keys()
)
class TestTransportEquivalence:
    def test_same_answers_and_truthful_counters(self, runner, artifact, expected):
        answers, stats = runner(artifact)

        # 1. Identical answers up to row order, per query, per duplicate.
        for sql, multiplicity in WORKLOAD:
            assert len(answers[sql]) == multiplicity
            for answer in answers[sql]:
                assert sorted(answer.result.values) == expected[sql]

        # 2. Truthful accounting: every admitted request completed, and
        #    the two *completion* signatures were joined at most once
        #    each no matter the transport (single-flight + join cache).
        total = sum(n for _sql, n in WORKLOAD)
        assert stats["requests"] == total
        assert stats["completed"] == total
        assert stats["failed"] == 0
        assert 1 <= stats["joins_started"] <= 2
        # 3. Clean shutdown happened inside each runner (context exit with
        #    zero queued work); nothing is left pending here.
        assert stats.get("queued", 0) == 0
