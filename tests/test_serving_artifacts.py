"""Tests for :mod:`repro.serving.artifacts` — versioned engine artifacts.

Covers the round-trip contract (save → load → identical answers and
bitwise-identical completed joins, across registry scenarios and in a
fresh OS process), the error taxonomy (corrupted manifests, format
version mismatches, schema mismatches), execution-config overrides
(chunking / workers change nothing), and the join-cache truthfulness
guarantees when an artifact is loaded into a live engine.
"""

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro
from repro import ReStore, ReStoreConfig, parse_query
from repro.core import ModelConfig
from repro.experiments import joins_bitwise_identical
from repro.incomplete.registry import make_scenario_dataset
from repro.nn import TrainConfig
from repro.serving import (
    ArtifactIntegrityError,
    ArtifactSchemaError,
    ArtifactVersionError,
    load_artifact,
    read_manifest,
    save_artifact,
    verify_artifact,
)

FAST = TrainConfig(epochs=3, batch_size=128, lr=1e-2, patience=2)

#: Scenario → queries used for answer-parity checks (single-table and
#: join shapes, grouped and ungrouped).
SCENARIO_QUERIES = {
    "synthetic/biased": [
        "SELECT COUNT(*) FROM tb;",
        "SELECT COUNT(*) FROM ta NATURAL JOIN tb WHERE b = 'v1';",
        "SELECT COUNT(*) FROM ta NATURAL JOIN tb GROUP BY a;",
    ],
    "housing/H1": [
        "SELECT AVG(price) FROM apartment;",
        "SELECT COUNT(*) FROM apartment WHERE room_type = 'Entire home/apt';",
        "SELECT AVG(price) FROM neighborhood NATURAL JOIN apartment GROUP BY state;",
    ],
    "movies/M1": [
        "SELECT COUNT(*) FROM movie;",
        "SELECT AVG(production_year) FROM movie;",
        "SELECT COUNT(*) FROM movie GROUP BY genre;",
    ],
}


def _build_engine(
    scenario: str, seed: int = 3, train: TrainConfig = FAST, **config_kwargs
) -> ReStore:
    dataset = make_scenario_dataset(scenario, keep_rate=0.5, seed=1, scale=0.2)
    config = ReStoreConfig(
        model=ModelConfig(train=train), seed=seed, **config_kwargs
    )
    engine = ReStore.from_dataset(dataset, config).fit()
    engine.scenario_name = scenario
    return engine


def _answers(engine: ReStore, scenario: str):
    out = {}
    for sql in SCENARIO_QUERIES[scenario]:
        try:
            out[sql] = engine.answer(parse_query(sql)).result.values
        except Exception as exc:  # parity includes the failure mode
            out[sql] = f"{type(exc).__name__}: {exc}"
    return out


@pytest.fixture(scope="module")
def synthetic_engine() -> ReStore:
    return _build_engine("synthetic/biased")


@pytest.fixture(scope="module")
def synthetic_artifact(synthetic_engine, tmp_path_factory) -> Path:
    path = tmp_path_factory.mktemp("artifact") / "synthetic"
    save_artifact(synthetic_engine, path, scenario="synthetic/biased")
    return path


# ----------------------------------------------------------------------
# Round trips
# ----------------------------------------------------------------------

class TestRoundTrip:
    @pytest.mark.parametrize("scenario", ["housing/H1", "movies/M1"])
    def test_save_load_answer_parity(self, scenario, tmp_path):
        """Loaded engines answer every workload query identically."""
        engine = _build_engine(scenario)
        expected = _answers(engine, scenario)
        save_artifact(engine, tmp_path / "a")
        loaded = ReStore.load(tmp_path / "a")
        assert _answers(loaded, scenario) == expected
        assert loaded.scenario_name == scenario

    def test_synthetic_answer_parity(self, synthetic_engine, synthetic_artifact):
        expected = _answers(synthetic_engine, "synthetic/biased")
        loaded = ReStore.load(synthetic_artifact)
        assert _answers(loaded, "synthetic/biased") == expected

    def test_completed_joins_bitwise_identical(
        self, synthetic_engine, synthetic_artifact
    ):
        """Every stored model completes to the same rows after a load."""
        loaded = ReStore.load(synthetic_artifact)
        for key, model in synthetic_engine.fitted_models().items():
            original = synthetic_engine.completed_join(model)
            restored = loaded.completed_join(loaded.fitted_models()[key])
            assert joins_bitwise_identical(original, restored)

    def test_loaded_weights_match_exactly(
        self, synthetic_engine, synthetic_artifact
    ):
        loaded = ReStore.load(synthetic_artifact)
        for key, model in synthetic_engine.fitted_models().items():
            restored = loaded.fitted_models()[key].state_dict()
            for name, value in model.state_dict().items():
                assert np.array_equal(restored[name], value), name

    def test_candidate_scores_preserved(self, synthetic_engine, synthetic_artifact):
        loaded = ReStore.load(synthetic_artifact)
        original = synthetic_engine.candidates("tb")
        restored = loaded.candidates("tb")
        assert [(c.model.kind, c.path.tables) for c in restored] == [
            (c.model.kind, c.path.tables) for c in original
        ]
        assert [c.target_loss for c in restored] == [
            c.target_loss for c in original
        ]
        assert [c.marginal_loss for c in restored] == [
            c.marginal_loss for c in original
        ]

    @pytest.mark.parametrize("overrides", [
        {"chunk_size": 7},
        {"chunk_size": 13, "n_workers": 2, "parallel_backend": "thread"},
    ])
    def test_execution_overrides_do_not_change_rows(
        self, synthetic_engine, synthetic_artifact, overrides
    ):
        """chunk_size / workers are execution detail, not artifact state."""
        loaded = ReStore.load(synthetic_artifact, config_overrides=overrides)
        for key, model in synthetic_engine.fitted_models().items():
            original = synthetic_engine.completed_join(model)
            restored = loaded.completed_join(loaded.fitted_models()[key])
            assert joins_bitwise_identical(original, restored)

    def test_manifest_contents(self, synthetic_engine, synthetic_artifact):
        manifest = read_manifest(synthetic_artifact)
        assert manifest["format_version"] == 1
        assert manifest["repro_version"] == repro.__version__
        assert manifest["seed"] == synthetic_engine.config.seed
        assert manifest["scenario"] == "synthetic/biased"
        assert manifest["targets"] == ["tb"]
        # Default training runs on the fused runtime; the manifest records it.
        assert manifest["train_backends"] == ["fused"]
        assert set(manifest["files"]) == {
            "config.json", "schema.json", "database.npz",
            "encoders.json", "encoders.npz", "models.json", "models.npz",
        }
        verify_artifact(synthetic_artifact)  # hashes hold

    def test_train_result_provenance_round_trips(
        self, synthetic_engine, synthetic_artifact
    ):
        """Backend stamp and per-epoch wall times survive save/load."""
        loaded = ReStore.load(synthetic_artifact)
        for key, model in synthetic_engine.fitted_models().items():
            original = model.train_result
            restored = loaded.fitted_models()[key].train_result
            assert original.backend == "fused"
            assert restored.backend == original.backend
            assert restored.epoch_wall_times_s == pytest.approx(
                original.epoch_wall_times_s
            )
            assert len(restored.epoch_wall_times_s) == original.epochs_run

    @pytest.mark.parametrize("backend", ["fused", "autograd"])
    def test_fresh_process_parity(self, backend, tmp_path):
        """The acceptance check, for both training backends: a fresh OS
        process loads the artifact and answers the workload with results
        identical to the in-memory engine at the same seed."""
        from dataclasses import replace as dc_replace

        engine = _build_engine(
            "synthetic/biased", train=dc_replace(FAST, backend=backend)
        )
        artifact = tmp_path / "artifact"
        save_artifact(engine, artifact, scenario="synthetic/biased")
        manifest = read_manifest(artifact)
        assert manifest["train_backends"] == [backend]
        expected = _answers(engine, "synthetic/biased")
        script = (
            "import json, sys\n"
            "from repro import ReStore, parse_query\n"
            "engine = ReStore.load(sys.argv[1])\n"
            "out = {}\n"
            "for sql in json.loads(sys.argv[2]):\n"
            "    values = engine.answer(parse_query(sql)).result.values\n"
            "    out[sql] = [[list(k), v] for k, v in values.items()]\n"
            "print(json.dumps(out))\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script, str(artifact),
             json.dumps(SCENARIO_QUERIES["synthetic/biased"])],
            capture_output=True, text=True,
            cwd=str(Path(__file__).resolve().parent.parent),
        )
        assert proc.returncode == 0, proc.stderr
        fresh = json.loads(proc.stdout)
        for sql, values in expected.items():
            assert fresh[sql] == [[list(k), v] for k, v in values.items()], sql


# ----------------------------------------------------------------------
# Error paths
# ----------------------------------------------------------------------

class TestErrors:
    def _copy_artifact(self, source: Path, dest: Path) -> Path:
        dest.mkdir()
        for item in source.iterdir():
            (dest / item.name).write_bytes(item.read_bytes())
        return dest

    def test_save_requires_fitted_engine(self, tmp_path):
        dataset = make_scenario_dataset(
            "synthetic/biased", keep_rate=0.5, seed=1, scale=0.2
        )
        engine = ReStore.from_dataset(dataset)  # never fitted
        with pytest.raises(ValueError, match="no fitted models"):
            save_artifact(engine, tmp_path / "x")

    def test_save_refuses_nonempty_dir(self, synthetic_engine, tmp_path):
        target = tmp_path / "occupied"
        target.mkdir()
        (target / "junk.txt").write_text("hello")
        with pytest.raises(FileExistsError):
            save_artifact(synthetic_engine, target)
        save_artifact(synthetic_engine, target, overwrite=True)
        assert ReStore.load(target).fitted_models()

    def test_missing_manifest(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(ArtifactIntegrityError, match="missing manifest"):
            load_artifact(tmp_path / "empty")

    def test_corrupted_manifest_json(self, synthetic_artifact, tmp_path):
        broken = self._copy_artifact(synthetic_artifact, tmp_path / "broken")
        (broken / "manifest.json").write_text("{not valid json", encoding="utf-8")
        with pytest.raises(ArtifactIntegrityError, match="not valid JSON"):
            load_artifact(broken)

    def test_format_version_mismatch(self, synthetic_artifact, tmp_path):
        future = self._copy_artifact(synthetic_artifact, tmp_path / "future")
        manifest = json.loads((future / "manifest.json").read_text())
        manifest["format_version"] = 99
        (future / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ArtifactVersionError, match="99"):
            load_artifact(future)

    def test_tampered_file_fails_hash_check(self, synthetic_artifact, tmp_path):
        tampered = self._copy_artifact(synthetic_artifact, tmp_path / "tampered")
        payload = (tampered / "models.npz").read_bytes()
        flipped = payload[:100] + bytes([payload[100] ^ 0xFF]) + payload[101:]
        (tampered / "models.npz").write_bytes(flipped)
        with pytest.raises(ArtifactIntegrityError, match="corrupted"):
            load_artifact(tampered)

    def test_missing_data_file(self, synthetic_artifact, tmp_path):
        partial = self._copy_artifact(synthetic_artifact, tmp_path / "partial")
        (partial / "database.npz").unlink()
        with pytest.raises(ArtifactIntegrityError, match="missing"):
            load_artifact(partial)

    def test_manifest_without_file_hashes(self, synthetic_artifact, tmp_path):
        hollow = self._copy_artifact(synthetic_artifact, tmp_path / "hollow")
        manifest = json.loads((hollow / "manifest.json").read_text())
        del manifest["files"]
        (hollow / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ArtifactIntegrityError, match="expected artifact files"):
            load_artifact(hollow)

    def test_load_into_mismatched_engine(self, synthetic_artifact):
        other = ReStore.from_dataset(make_scenario_dataset(
            "synthetic/mcar", keep_rate=0.5, seed=7, scale=0.2
        ))
        with pytest.raises(ArtifactSchemaError, match="does not match"):
            load_artifact(synthetic_artifact, engine=other)

    def test_overrides_rejected_for_live_engine(
        self, synthetic_engine, synthetic_artifact
    ):
        with pytest.raises(ValueError, match="fresh engine"):
            load_artifact(
                synthetic_artifact,
                engine=synthetic_engine,
                config_overrides={"chunk_size": 4},
            )

    @pytest.mark.parametrize("overrides", [
        {"seed": 7},                     # changes the completed joins
        {"num_bins": 8},                 # belongs to the fitted codecs
        {"seed": 7, "chunk_size": 4},    # one bad key taints the call
    ])
    def test_trained_state_overrides_rejected(self, synthetic_artifact, overrides):
        """Only execution-only settings may be overridden on load."""
        with pytest.raises(ValueError, match="execution settings"):
            load_artifact(synthetic_artifact, config_overrides=overrides)


# ----------------------------------------------------------------------
# Join-cache truthfulness around loads (regression: stale caches)
# ----------------------------------------------------------------------

class TestCacheAfterLoad:
    def test_fresh_load_starts_with_empty_truthful_cache(self, synthetic_artifact):
        loaded = ReStore.load(synthetic_artifact)
        assert len(loaded.join_cache) == 0
        assert loaded.cache_stats.requests == 0
        query = parse_query("SELECT COUNT(*) FROM tb;")
        first = loaded.answer(query)
        assert not first.from_cache and loaded.cache_stats.misses == 1
        second = loaded.answer(query)
        assert second.from_cache and loaded.cache_stats.hits == 1

    def test_load_into_live_engine_invalidates_stale_joins(
        self, synthetic_artifact
    ):
        """Loading over a live engine must not serve the old models' joins."""
        # Same data + seed as the artifact (loads into a live engine require
        # a matching database), but trained far shorter — so the live
        # engine's models, and its cached joins, genuinely differ from the
        # artifact's state.
        engine = _build_engine(
            "synthetic/biased",
            train=TrainConfig(epochs=1, batch_size=128, lr=1e-2, patience=1),
        )
        query = parse_query("SELECT COUNT(*) FROM ta NATURAL JOIN tb;")
        engine.answer(query)
        engine.answer(query)
        assert engine.cache_stats.hits >= 1 and len(engine.join_cache) > 0

        load_artifact(synthetic_artifact, engine=engine)
        # Stale joins are gone and the statistics describe the new era only.
        assert len(engine.join_cache) == 0
        assert engine.cache_stats.requests == 0
        answer = engine.answer(query)
        assert not answer.from_cache
        assert engine.cache_stats.misses == 1 and engine.cache_stats.hits == 0
        # The adopted state answers exactly like a fresh load — not like the
        # live engine's own (shorter-trained) models.
        fresh = ReStore.load(synthetic_artifact)
        assert engine.answer(query).result.values == \
            fresh.answer(query).result.values

    def test_refit_after_load_invalidates_and_retrains(self, synthetic_artifact):
        loaded = ReStore.load(synthetic_artifact)
        loaded.answer(parse_query("SELECT COUNT(*) FROM tb;"))
        assert len(loaded.join_cache) > 0
        loaded.fit()
        assert len(loaded.join_cache) == 0  # stale joins dropped by re-fit
        for model in loaded.fitted_models().values():
            assert model.train_result is not None
            assert model.train_result.val_indices is not None  # really trained
        loaded.answer(parse_query("SELECT COUNT(*) FROM tb;"))

    def test_clear_cache_after_load_resets_counters(self, synthetic_artifact):
        loaded = ReStore.load(synthetic_artifact)
        loaded.answer(parse_query("SELECT COUNT(*) FROM tb;"))
        loaded.clear_cache()
        assert len(loaded.join_cache) == 0
        assert loaded.cache_stats.requests == 0


# ----------------------------------------------------------------------
# Version satellite
# ----------------------------------------------------------------------

class TestVersion:
    def test_version_matches_pyproject(self):
        pyproject = Path(__file__).resolve().parent.parent / "pyproject.toml"
        import re
        declared = re.search(
            r'^version\s*=\s*"([^"]+)"', pyproject.read_text(), flags=re.M
        ).group(1)
        assert repro.__version__ == declared

    def test_version_is_exported(self):
        assert repro.repro_version() == repro.__version__
        assert repro.__version__ != "0.0.0+unknown"
