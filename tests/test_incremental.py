"""Units for the incremental-completion layer (:mod:`repro.incremental`).

Four rings, cheapest first:

* **mutations** — tuple-granular inserts/updates/deletes on hand-built
  databases: delta bookkeeping, cascade closure, annotation realignment,
  and the full negative path (every violation is a
  :class:`~repro.errors.MutationError`, never a raw ``KeyError``);
* **invalidation planning** — the delta → affected-chunk calculus, pure
  (no engine, no caches);
* **cache truthfulness** — ``invalidate_delta`` on a real
  :class:`PartialJoinCache` must *count* its evictions (the PR 4
  regression class: partial invalidation silently resetting counters);
* **engine + artifacts** (``slow``) — ``apply_mutations`` /
  ``recomplete`` / ``check_drift`` / ``fine_tune`` on a fitted engine,
  and artifact lineage (parent digest + delta metadata, taxonomy errors
  on mismatch).
"""

import numpy as np
import pytest

from repro import ReStore, ReStoreConfig
from repro.core import ModelConfig
from repro.errors import ArtifactLineageError, MutationError, wire_code
from repro.incomplete.registry import make_scenario_dataset
from repro.incremental import (
    MutationDelta,
    TableDelta,
    affected_tasks,
    apply_mutations,
    detect_drift,
    distribution_summary,
    plan_invalidation,
    total_variation,
)
from repro.incremental.drift import DriftThresholds
from repro.nn import TrainConfig
from repro.relational import ColumnKind, Database, ForeignKey, Table
from repro.runtime.cache import PartialJoinCache
from repro.serving import artifact_lineage, save_artifact, verify_lineage

K = ColumnKind.KEY
C = ColumnKind.CATEGORICAL
N = ColumnKind.CONTINUOUS

FAST = TrainConfig(epochs=3, batch_size=128, lr=1e-2, patience=2)


def _mini_db() -> Database:
    parent = Table(
        "pa",
        {"id": [1, 2, 3], "x": [10.0, 20.0, 30.0], "c": ["u", "v", "u"]},
        {"id": K, "x": N, "c": C},
    )
    child = Table(
        "cb",
        {"id": [1, 2, 3, 4], "pa_id": [1, 1, 2, 3], "y": [1.0, 2.0, 3.0, 4.0]},
        {"id": K, "pa_id": K, "y": N},
    )
    grand = Table(
        "gc",
        {"id": [1, 2], "cb_id": [1, 4], "z": ["a", "b"]},
        {"id": K, "cb_id": K, "z": C},
    )
    return Database(
        [parent, child, grand],
        [ForeignKey("cb", "pa_id", "pa"), ForeignKey("gc", "cb_id", "cb")],
    )


# ----------------------------------------------------------------------
# Mutations
# ----------------------------------------------------------------------


class TestApplyMutations:
    def test_update_is_copy_on_write_and_position_stable(self):
        db = _mini_db()
        new_db, _, delta = apply_mutations(
            db, updates={"pa": [{"id": 2, "x": 99.0}]}
        )
        # original untouched, positions stable, only the named cell changed
        assert db.table("pa")["x"][1] == 20.0
        np.testing.assert_array_equal(new_db.table("pa")["id"], [1, 2, 3])
        assert new_db.table("pa")["x"][1] == 99.0
        td = delta.for_table("pa")
        assert td.updated == (2,) and td.updated_positions == (1,)
        assert td.grid_stable
        assert delta.affected_tables() == ("pa",)

    def test_insert_appends_rows_in_order(self):
        db = _mini_db()
        new_db, _, delta = apply_mutations(
            db,
            inserts={"pa": [
                {"id": 4, "x": 40.0, "c": "v"},
                {"id": 5, "x": 50.0, "c": "w"},
            ]},
        )
        np.testing.assert_array_equal(new_db.table("pa")["id"], [1, 2, 3, 4, 5])
        assert new_db.table("pa")["x"][4] == 50.0
        td = delta.for_table("pa")
        assert td.inserted == (4, 5) and not td.grid_stable
        assert delta.num_changes == 2

    def test_delete_cascades_through_fk_closure(self):
        db = _mini_db()
        new_db, _, delta = apply_mutations(db, deletes={"pa": [1]})
        # pa=1 owns cb rows 1,2; cb=1 owns gc row 1: all gone transitively
        np.testing.assert_array_equal(new_db.table("pa")["id"], [2, 3])
        np.testing.assert_array_equal(new_db.table("cb")["id"], [3, 4])
        np.testing.assert_array_equal(new_db.table("gc")["id"], [2])
        assert delta.for_table("pa").deleted == (1,)
        assert delta.for_table("cb").deleted == (1, 2)
        assert delta.for_table("gc").deleted == (1,)

    def test_delete_without_cascade_leaves_children(self):
        db = _mini_db()
        new_db, _, delta = apply_mutations(
            db, deletes={"pa": [1]}, cascade=False
        )
        assert len(new_db.table("cb")) == 4  # dangling refs tolerated
        assert delta.affected_tables() == ("pa",)

    def test_batch_order_updates_then_inserts_then_deletes(self):
        db = _mini_db()
        new_db, _, delta = apply_mutations(
            db,
            updates={"pa": [{"id": 3, "x": 33.0}]},
            inserts={"pa": [{"id": 4, "x": 40.0, "c": "u"}]},
            deletes={"pa": [1]},
        )
        np.testing.assert_array_equal(new_db.table("pa")["id"], [2, 3, 4])
        assert new_db.table("pa")["x"][1] == 33.0
        td = delta.for_table("pa")
        assert td.updated == (3,) and td.inserted == (4,) and td.deleted == (1,)
        counts = delta.counts()["pa"]
        assert counts == {"inserted": 1, "updated": 1, "deleted": 1}

    def test_annotation_tuple_factors_realigned(self):
        ds = make_scenario_dataset(
            "synthetic/biased", keep_rate=0.5, seed=1, scale=0.1
        )
        db, annotation = ds.incomplete, ds.annotation
        key = "tb.ta_id -> ta.id"
        before = np.asarray(annotation.known_tuple_factors[key])
        assert len(before) == len(db.table("ta"))
        ta = db.table("ta")
        new_pk = int(ta["id"].max()) + 1
        doomed = int(ta["id"][0])
        new_db, new_annotation, _ = apply_mutations(
            db, annotation,
            inserts={"ta": [{"id": new_pk, "a": str(ta["a"][0])}]},
            deletes={"ta": [doomed]},
        )
        after = np.asarray(new_annotation.known_tuple_factors[key])
        # still parent-row aligned: one deleted, one appended (TF_UNKNOWN)
        assert len(after) == len(new_db.table("ta"))
        from repro.relational.tuple_factors import TF_UNKNOWN

        assert after[-1] == TF_UNKNOWN
        np.testing.assert_array_equal(after[:-1], before[1:])


class TestMutationNegativePaths:
    """Every violation is a MutationError (stable wire code), never KeyError."""

    def test_unknown_table(self):
        with pytest.raises(MutationError, match="unknown table"):
            apply_mutations(_mini_db(), updates={"nope": [{"id": 1, "x": 0.0}]})

    def test_unknown_row(self):
        with pytest.raises(MutationError, match="no row with id=77"):
            apply_mutations(_mini_db(), updates={"pa": [{"id": 77, "x": 0.0}]})

    def test_unknown_delete_row(self):
        with pytest.raises(MutationError, match="no row with id=77"):
            apply_mutations(_mini_db(), deletes={"pa": [77]})

    def test_unknown_column(self):
        with pytest.raises(MutationError, match="unknown column"):
            apply_mutations(_mini_db(), updates={"pa": [{"id": 1, "nope": 1}]})

    def test_update_without_pk(self):
        with pytest.raises(MutationError, match="must carry the primary key"):
            apply_mutations(_mini_db(), updates={"pa": [{"x": 1.0}]})

    def test_update_changing_nothing(self):
        with pytest.raises(MutationError, match="changes no columns"):
            apply_mutations(_mini_db(), updates={"pa": [{"id": 1}]})

    def test_insert_missing_columns(self):
        with pytest.raises(MutationError, match="missing"):
            apply_mutations(_mini_db(), inserts={"pa": [{"id": 9}]})

    def test_insert_duplicate_pk(self):
        with pytest.raises(MutationError, match="duplicate id=1"):
            apply_mutations(
                _mini_db(), inserts={"pa": [{"id": 1, "x": 0.0, "c": "u"}]}
            )

    def test_empty_batch(self):
        with pytest.raises(MutationError, match="empty"):
            apply_mutations(_mini_db())

    def test_wire_code_is_stable(self):
        assert wire_code(MutationError("x")) == "mutation_invalid"
        assert wire_code(ArtifactLineageError("x")) == "artifact_lineage"


# ----------------------------------------------------------------------
# Invalidation planning (pure calculus)
# ----------------------------------------------------------------------


class TestInvalidationPlanning:
    ROOT = "pa"
    CLOSURE = {"pa", "cb"}

    def _plan(self, delta, num_roots=100, chunk_size=10):
        return plan_invalidation(
            delta, root_table=self.ROOT, closure_tables=self.CLOSURE,
            num_roots=num_roots, chunk_size=chunk_size,
        )

    def test_root_update_evicts_only_covering_chunks(self):
        delta = MutationDelta(tables={"pa": TableDelta(
            updated=(5, 42), updated_positions=(4, 41))})
        plan = self._plan(delta)
        assert plan.kind == "chunks"
        assert plan.tasks == frozenset({(0, 10), (40, 50)})
        assert plan.touches_cache

    def test_root_insert_or_delete_invalidate_all(self):
        for delta in (
            MutationDelta(tables={"pa": TableDelta(inserted=(101,))}),
            MutationDelta(tables={"pa": TableDelta(deleted=(3,))}),
        ):
            plan = self._plan(delta)
            assert plan.kind == "all" and plan.touches_cache

    def test_closure_table_mutation_invalidates_all(self):
        delta = MutationDelta(tables={"cb": TableDelta(
            updated=(1,), updated_positions=(0,))})
        plan = self._plan(delta)
        assert plan.kind == "all"

    def test_outside_closure_is_a_no_op(self):
        delta = MutationDelta(tables={"gc": TableDelta(deleted=(1,))})
        plan = self._plan(delta)
        assert plan.kind == "none" and not plan.touches_cache
        assert plan.tasks == frozenset()

    def test_affected_tasks_cover_every_position(self):
        tasks = affected_tasks((0, 9, 10, 99), num_roots=100, chunk_size=10)
        assert tasks == frozenset({(0, 10), (10, 20), (90, 100)})
        # ragged final chunk
        tasks = affected_tasks((10,), num_roots=11, chunk_size=10)
        assert tasks == frozenset({(10, 11)})


# ----------------------------------------------------------------------
# Cache-stats truthfulness under partial invalidation
# ----------------------------------------------------------------------


class TestPartialCacheInvalidation:
    SIG = ("ar", ("pa", "cb"), 0, True, "compiled")
    OTHER = ("ar", ("qq", "rr"), 0, True, "compiled")
    GRID = ((0, 10), (10, 20), (20, 30))

    def _seeded(self) -> PartialJoinCache:
        cache = PartialJoinCache(capacity=32)
        for sig in (self.SIG, self.OTHER):
            for task in self.GRID:
                cache.put(sig, self.GRID, task, frozenset(), f"{sig}:{task}")
        return cache

    def test_task_scoped_eviction_counts_and_spares_others(self):
        cache = self._seeded()
        assert len(cache) == 6
        evicted = cache.invalidate_delta(self.SIG, tasks={(10, 20)})
        assert evicted == 1
        assert len(cache) == 5
        # Counters reflect the eviction — not a silent reset (the PR 4
        # regression class).
        assert cache.stats.evictions == 1
        assert cache.stats.invalidations == 1
        # untouched chunks of the same signature still serve
        assert cache.lookup(self.SIG, self.GRID, (0, 10), frozenset()) is not None
        assert cache.lookup(self.SIG, self.GRID, (10, 20), frozenset()) is None
        # the other signature is entirely unaffected
        for task in self.GRID:
            assert cache.lookup(self.OTHER, self.GRID, task, frozenset()) is not None

    def test_signature_scoped_eviction(self):
        cache = self._seeded()
        evicted = cache.invalidate_delta(self.SIG, tasks=None)
        assert evicted == 3
        assert cache.stats.evictions == 3
        for task in self.GRID:
            assert cache.lookup(self.SIG, self.GRID, task, frozenset()) is None
            assert cache.lookup(self.OTHER, self.GRID, task, frozenset()) is not None

    def test_miss_counters_survive_invalidation(self):
        cache = self._seeded()
        cache.lookup(self.SIG, self.GRID, (0, 10), frozenset())   # hit
        before = cache.stats.hits
        cache.invalidate_delta(self.SIG, tasks={(0, 10)})
        assert cache.stats.hits == before  # eviction never rewrites history

    def test_unknown_signature_or_task_is_a_counted_no_op(self):
        cache = self._seeded()
        assert cache.invalidate_delta(("missing",), tasks=None) == 0
        assert cache.invalidate_delta(self.SIG, tasks={(999, 1000)}) == 0
        assert cache.stats.evictions == 0
        assert cache.stats.invalidations == 0
        assert len(cache) == 6


# ----------------------------------------------------------------------
# Drift detection
# ----------------------------------------------------------------------


class TestDrift:
    def test_total_variation_bounds(self):
        p = np.array([1.0, 0.0, 0.0])
        q = np.array([0.0, 1.0, 0.0])
        assert total_variation(p, p) == 0.0
        assert total_variation(p, q) == 1.0

    def test_identical_database_reports_zero_drift(self):
        from repro.core.path_data import build_encoders

        db = _mini_db()
        encoders = build_encoders(db, num_bins=8)
        summary = distribution_summary(db, encoders)
        report = detect_drift(summary, summary)
        assert report.max_drift == 0.0
        assert report.recommendation == "skip"
        assert report.drifted_tables() == {}

    def test_thresholds_grade_recommendations(self):
        thresholds = DriftThresholds(fine_tune=0.1, refit=0.5)
        assert thresholds.recommend(0.05) == "skip"
        assert thresholds.recommend(0.3) == "fine_tune"
        assert thresholds.recommend(0.8) == "refit"

    def test_mutated_column_registers_drift(self):
        from repro.core.path_data import build_encoders

        db = _mini_db()
        encoders = build_encoders(db, num_bins=8)
        baseline = distribution_summary(db, encoders)
        mutated, _, _ = apply_mutations(
            db, updates={"pa": [{"id": i, "c": "v"} for i in (1, 3)]}
        )
        report = detect_drift(baseline, distribution_summary(mutated, encoders))
        assert report.max_drift > 0.0
        assert "pa" in report.per_table and report.per_table["pa"] > 0.0

    def test_missing_table_counts_as_total_drift(self):
        report = detect_drift({"pa": {"x": np.array([1.0])}}, {})
        assert report.per_table["pa"] == 1.0
        assert report.recommendation == "refit"


# ----------------------------------------------------------------------
# Fitted engine + lineage (slow: trains models)
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def fitted_engine():
    dataset = make_scenario_dataset(
        "synthetic/biased", keep_rate=0.5, seed=1, scale=0.2
    )
    config = ReStoreConfig(model=ModelConfig(train=FAST), seed=3)
    return ReStore.from_dataset(dataset, config).fit()


@pytest.mark.slow
class TestEngineIncremental:
    def test_recomplete_reuses_untouched_chunks(self, fitted_engine, tmp_path):
        engine = ReStore.load(self._artifact(fitted_engine, tmp_path))
        cold = engine.recomplete()
        assert cold.recompletion["chunks_walked"] == cold.recompletion["chunks_total"]
        root = engine._default_model().layout.path.tables[0]
        tbl = engine.db.table(root)
        delta = engine.apply_mutations(updates={root: [
            {"id": int(tbl["id"][0]), "a": str(tbl["a"][1])}
        ]})
        again = engine.recomplete(delta)
        assert again.recompletion["chunks_walked"] >= 1
        assert again.recompletion["chunks_cached"] >= 1
        assert (again.recompletion["chunks_walked"]
                + again.recompletion["chunks_cached"]
                == again.recompletion["chunks_total"])

    def test_fine_tune_is_digest_gated(self, fitted_engine, tmp_path):
        engine = ReStore.load(self._artifact(fitted_engine, tmp_path))
        noop = engine.fine_tune()
        assert noop["skipped"] is True and noop["models_tuned"] == 0
        root = engine._default_model().layout.path.tables[0]
        tbl = engine.db.table(root)
        engine.apply_mutations(updates={root: [
            {"id": int(tbl["id"][0]), "a": str(tbl["a"][1])}
        ]})
        tuned = engine.fine_tune()
        assert tuned["skipped"] is False and tuned["models_tuned"] >= 1
        for model in engine.fitted_models().values():
            assert model.train_result.warm_start is True
        # and the digest gate closes again
        assert engine.fine_tune()["skipped"] is True

    def test_check_drift_on_fitted_engine(self, fitted_engine, tmp_path):
        engine = ReStore.load(self._artifact(fitted_engine, tmp_path))
        assert engine.check_drift().recommendation == "skip"
        root = engine._default_model().layout.path.tables[0]
        tbl = engine.db.table(root)
        flip = str(tbl["a"][int(np.argmax(tbl["a"] != tbl["a"][0]))])
        engine.apply_mutations(updates={root: [
            {"id": int(k), "a": flip} for k in tbl["id"][: len(tbl) // 2]
        ]})
        report = engine.check_drift()
        assert report.max_drift > 0.0

    @staticmethod
    def _artifact(engine, tmp_path):
        path = tmp_path / "base"
        if not path.exists():
            save_artifact(engine, path, scenario="synthetic/biased")
        return path


@pytest.mark.slow
class TestArtifactLineage:
    def test_lineage_round_trip_and_verify(self, fitted_engine, tmp_path):
        parent = tmp_path / "parent"
        save_artifact(fitted_engine, parent, scenario="synthetic/biased")
        child_engine = ReStore.load(parent)
        root = child_engine._default_model().layout.path.tables[0]
        tbl = child_engine.db.table(root)
        delta = child_engine.apply_mutations(updates={root: [
            {"id": int(tbl["id"][0]), "a": str(tbl["a"][1])}
        ]})
        child_engine.fine_tune()
        child = tmp_path / "child"
        save_artifact(child_engine, child, scenario="synthetic/biased",
                      parent=parent, delta=delta)
        lineage = artifact_lineage(child)
        assert lineage["parent_path"] == str(parent)
        assert lineage["delta"][root]["updated"] == 1
        assert verify_lineage(child)["parent_digest"] == lineage["parent_digest"]
        # warm-start flag survives the artifact round trip
        reloaded = ReStore.load(child)
        assert any(
            m.train_result.warm_start for m in reloaded.fitted_models().values()
        )

    def test_lineage_negative_paths(self, fitted_engine, tmp_path):
        plain = tmp_path / "plain"
        save_artifact(fitted_engine, plain, scenario="synthetic/biased")
        assert artifact_lineage(plain) is None
        with pytest.raises(ArtifactLineageError, match="no lineage"):
            verify_lineage(plain)
        # delta without a parent is refused outright
        delta = MutationDelta(tables={"ta": TableDelta(updated=(1,))})
        with pytest.raises(ArtifactLineageError, match="requires a parent"):
            save_artifact(fitted_engine, tmp_path / "x",
                          scenario="synthetic/biased", delta=delta)
        # lineage naming the wrong parent fails digest verification
        child = tmp_path / "child2"
        save_artifact(fitted_engine, child, scenario="synthetic/biased",
                      parent=plain)
        imposter = tmp_path / "imposter"
        engine2 = ReStore.load(plain)
        root = engine2._default_model().layout.path.tables[0]
        tbl = engine2.db.table(root)
        engine2.apply_mutations(updates={root: [
            {"id": int(tbl["id"][0]), "a": str(tbl["a"][1])}
        ]})
        save_artifact(engine2, imposter, scenario="synthetic/biased")
        with pytest.raises(ArtifactLineageError, match="digest"):
            verify_lineage(child, parent_path=imposter)
