"""Tests for :mod:`repro.serving.service` — the micro-batching service.

Covers answer parity with direct engine calls, single-flight join
coalescing (N identical concurrent queries → exactly one incompleteness
join), admission backpressure and overload rejection, lifecycle edges
(double start, close with queued work, submit after close), query
validation errors, concurrent multi-client load, and the stats surface.
"""

import asyncio
import time

import pytest

from repro import ReStore, ReStoreConfig, parse_query
from repro.core import ModelConfig
from repro.incomplete.registry import make_scenario_dataset
from repro.nn import TrainConfig
from repro.serving import (
    CompletionService,
    MicroBatcher,
    ServiceClosedError,
    ServiceConfig,
    ServiceOverloadedError,
)

FAST = TrainConfig(epochs=3, batch_size=128, lr=1e-2, patience=2)

COMPLETION_SQL = "SELECT COUNT(*) FROM ta NATURAL JOIN tb WHERE b = 'v1';"
COMPLETE_ONLY_SQL = "SELECT COUNT(*) FROM ta;"
GROUPED_SQL = "SELECT COUNT(*) FROM ta NATURAL JOIN tb GROUP BY a;"


@pytest.fixture(scope="module")
def engine() -> ReStore:
    dataset = make_scenario_dataset(
        "synthetic/biased", keep_rate=0.5, seed=1, scale=0.2
    )
    config = ReStoreConfig(model=ModelConfig(train=FAST), seed=3)
    return ReStore.from_dataset(dataset, config).fit()


@pytest.fixture()
def fresh_engine(engine) -> ReStore:
    """The module engine with an empty, zeroed join cache."""
    engine.clear_cache()
    return engine


def run(coro):
    return asyncio.run(coro)


class TestAnswers:
    def test_matches_direct_engine_answers(self, fresh_engine):
        queries = [COMPLETION_SQL, COMPLETE_ONLY_SQL, GROUPED_SQL]
        direct = [
            fresh_engine.answer(parse_query(sql)).result.values
            for sql in queries
        ]
        fresh_engine.clear_cache()

        async def main():
            async with CompletionService(fresh_engine) as service:
                return await service.submit_many(queries)

        answers = run(main())
        assert [a.result.values for a in answers] == direct
        assert answers[1].used_completion is False  # ta is complete

    def test_accepts_ast_and_sql(self, fresh_engine):
        async def main():
            async with CompletionService(fresh_engine) as service:
                from_sql = await service.submit(COMPLETION_SQL)
                from_ast = await service.submit(parse_query(COMPLETION_SQL))
                return from_sql, from_ast

        from_sql, from_ast = run(main())
        assert from_sql.result.values == from_ast.result.values

    def test_engine_errors_propagate_to_caller(self):
        """Routing failures surface on the submitting coroutine, not in a
        background task: an unfitted engine rejects completion queries."""
        unfitted = ReStore.from_dataset(make_scenario_dataset(
            "synthetic/biased", keep_rate=0.5, seed=1, scale=0.2
        ))

        async def main():
            async with CompletionService(unfitted) as service:
                complete_ok = await service.submit(COMPLETE_ONLY_SQL)
                with pytest.raises(RuntimeError, match="fit"):
                    await service.submit(COMPLETION_SQL)
                return complete_ok, service.stats()

        answer, stats = run(main())
        assert answer.used_completion is False  # complete tables still work
        assert stats.failed == 1 and stats.completed == 1


class TestSuspectedBias:
    def test_bias_hint_matches_direct_engine_and_keeps_loop_off_joins(
        self, fresh_engine
    ):
        """Suspected-bias requests defer their (join-evaluating) selection
        to the worker thread and answer exactly like the engine."""
        from repro import BiasDirection, SuspectedBias

        bias = SuspectedBias(
            attribute="b", direction=BiasDirection.UNDERESTIMATED, value="v1"
        )
        query = parse_query(COMPLETION_SQL)
        direct = fresh_engine.answer(query, suspected_bias=bias).result.values
        fresh_engine.clear_cache()

        async def main():
            async with CompletionService(fresh_engine) as service:
                return await service.submit(COMPLETION_SQL, suspected_bias=bias)

        assert run(main()).result.values == direct


class TestValidation:
    def test_unknown_column_raises_value_error_with_candidates(self, fresh_engine):
        async def main():
            async with CompletionService(fresh_engine) as service:
                await service.submit("SELECT AVG(nope) FROM tb;")

        with pytest.raises(ValueError) as err:
            run(main())
        assert "nope" in str(err.value)
        assert "tb.b" in str(err.value)  # candidates are listed
        assert not isinstance(err.value, KeyError)

    def test_unknown_table_raises_value_error(self, fresh_engine):
        async def main():
            async with CompletionService(fresh_engine) as service:
                await service.submit("SELECT COUNT(*) FROM nowhere;")

        with pytest.raises(ValueError, match="nowhere"):
            run(main())

    def test_validation_failures_do_not_leak_admission_slots(self, fresh_engine):
        async def main():
            config = ServiceConfig(max_queue=2)
            async with CompletionService(fresh_engine, config) as service:
                for _ in range(5):  # would exhaust 2 slots if leaking
                    with pytest.raises(ValueError):
                        await service.submit("SELECT AVG(nope) FROM tb;")
                return await service.submit(COMPLETION_SQL)

        assert run(main()).result.values


class TestSingleFlight:
    def test_identical_concurrent_queries_run_one_join(self, fresh_engine):
        async def main():
            config = ServiceConfig(max_batch=32, batch_window_ms=20)
            async with CompletionService(fresh_engine, config) as service:
                answers = await service.submit_many([COMPLETION_SQL] * 16)
                return answers, service.stats()

        answers, stats = run(main())
        assert len({a.result.scalar for a in answers}) == 1
        assert stats.joins_started == 1
        # Requests beyond the first either shared its batch group or rode
        # the in-flight join; a few may land as plain cache hits if their
        # batch formed after the join finished (timing), so the counter is
        # bounded, not pinned.
        assert 0 < stats.coalesced_requests <= 15
        assert stats.cache["misses"] == 1  # the one join; everything else hit

    def test_coalescing_across_batches(self, fresh_engine):
        """A tiny batch window still coalesces: later batches await the
        in-flight join or hit the cache — never start a second join."""
        async def main():
            config = ServiceConfig(max_batch=1, batch_window_ms=0)
            async with CompletionService(fresh_engine, config) as service:
                answers = await service.submit_many([COMPLETION_SQL] * 8)
                return answers, service.stats()

        answers, stats = run(main())
        assert len({a.result.scalar for a in answers}) == 1
        assert stats.joins_started == 1
        assert stats.batches >= 2  # truly split across micro-batches

    def test_mixed_batch_groups_by_signature(self, fresh_engine):
        async def main():
            config = ServiceConfig(max_batch=32, batch_window_ms=20)
            async with CompletionService(fresh_engine, config) as service:
                answers = await service.submit_many(
                    [COMPLETION_SQL, COMPLETE_ONLY_SQL] * 4
                )
                return answers, service.stats()

        answers, stats = run(main())
        assert stats.joins_started == 1  # complete-only queries join nothing
        assert stats.completed == 8


class TestBackpressure:
    def test_overload_rejection_without_wait(self, fresh_engine, monkeypatch):
        real_answer = fresh_engine.answer

        def slow_answer(*args, **kwargs):
            time.sleep(0.2)
            return real_answer(*args, **kwargs)

        monkeypatch.setattr(fresh_engine, "answer", slow_answer)

        async def main():
            config = ServiceConfig(
                max_queue=2, max_batch=1, batch_window_ms=0, n_workers=1
            )
            async with CompletionService(fresh_engine, config) as service:
                slow = [
                    asyncio.ensure_future(service.submit(COMPLETION_SQL))
                    for _ in range(2)
                ]
                await asyncio.sleep(0.05)  # both slots now held in-service
                with pytest.raises(ServiceOverloadedError):
                    await service.submit(COMPLETION_SQL, wait=False)
                answers = await asyncio.gather(*slow)
                return answers, service.stats()

        answers, stats = run(main())
        assert len(answers) == 2
        assert stats.rejected == 1
        assert stats.completed == 2

    def test_backpressure_waits_instead_of_failing(self, fresh_engine, monkeypatch):
        real_answer = fresh_engine.answer

        def slow_answer(*args, **kwargs):
            time.sleep(0.05)
            return real_answer(*args, **kwargs)

        monkeypatch.setattr(fresh_engine, "answer", slow_answer)

        async def main():
            config = ServiceConfig(
                max_queue=2, max_batch=2, batch_window_ms=0, n_workers=1
            )
            async with CompletionService(fresh_engine, config) as service:
                answers = await service.submit_many([COMPLETION_SQL] * 6)
                return answers, service.stats()

        answers, stats = run(main())
        assert len(answers) == 6 and stats.completed == 6
        assert stats.rejected == 0


class TestLifecycle:
    def test_submit_requires_running_service(self, fresh_engine):
        async def main():
            service = CompletionService(fresh_engine)
            with pytest.raises(ServiceClosedError):
                await service.submit(COMPLETION_SQL)

        run(main())

    def test_submit_after_close_raises(self, fresh_engine):
        async def main():
            service = CompletionService(fresh_engine)
            await service.start()
            await service.close()
            with pytest.raises(ServiceClosedError):
                await service.submit(COMPLETION_SQL)

        run(main())

    def test_double_start_and_close_are_idempotent(self, fresh_engine):
        async def main():
            service = CompletionService(fresh_engine)
            await service.start()
            await service.start()
            answer = await service.submit(COMPLETE_ONLY_SQL)
            await service.close()
            await service.close()
            return answer

        assert run(main()).result.scalar > 0


class TestConcurrentClients:
    @pytest.mark.parametrize("num_clients", [8, 32])
    def test_sustains_concurrent_clients(self, fresh_engine, num_clients):
        """The acceptance bar: ≥ 8 concurrent clients, every request
        answered, identical in-flight queries coalesced into one join."""
        queries = [COMPLETION_SQL, GROUPED_SQL, COMPLETE_ONLY_SQL]

        async def client(service, client_id):
            results = []
            for i in range(3):
                answer = await service.submit(queries[(client_id + i) % 3])
                results.append(answer.result.values)
            return results

        async def main():
            config = ServiceConfig(max_queue=max(num_clients, 16))
            async with CompletionService(fresh_engine, config) as service:
                results = await asyncio.gather(
                    *(client(service, i) for i in range(num_clients))
                )
                return results, service.stats()

        results, stats = run(main())
        assert len(results) == num_clients
        assert stats.completed == 3 * num_clients
        assert stats.failed == 0
        # Two distinct completion signatures exist at most (both queries
        # select a model over the same target); the cache and single-flight
        # map keep the join count independent of the client count.
        assert stats.joins_started <= 2
        assert stats.p95_latency_ms >= stats.p50_latency_ms > 0


class TestStats:
    def test_stats_shape_and_counters(self, fresh_engine):
        async def main():
            async with CompletionService(fresh_engine) as service:
                await service.submit_many([COMPLETION_SQL] * 4)
                return service.stats()

        stats = run(main())
        as_dict = stats.as_dict()
        assert as_dict["requests"] == 4
        assert as_dict["completed"] == 4
        assert as_dict["queued"] == 0
        assert as_dict["batches"] >= 1
        assert 1 <= as_dict["mean_batch_size"] <= 4
        assert as_dict["max_batch_size"] <= 4
        assert as_dict["p50_latency_ms"] > 0
        assert 0 <= as_dict["cache"]["hit_rate"] <= 1


class TestMicroBatcher:
    def test_put_rejects_before_start(self):
        batcher = MicroBatcher(max_queue=2, max_batch=2, window_s=0.0)

        async def main():
            with pytest.raises(ServiceClosedError):
                await batcher.put(object())

        run(main())

    def test_nowait_put_rejects_when_full(self):
        async def main():
            batcher = MicroBatcher(max_queue=1, max_batch=4, window_s=0.0)
            batcher.start()
            await batcher.put("a", wait=False)
            with pytest.raises(ServiceOverloadedError):
                await batcher.put("b", wait=False)
            return batcher.drain()

        assert run(main()) == ["a"]

    def test_next_batch_respects_max_batch(self):
        async def main():
            batcher = MicroBatcher(max_queue=8, max_batch=3, window_s=0.5)
            batcher.start()
            for item in range(5):
                await batcher.put(item)
            first = await batcher.next_batch()
            second = await batcher.next_batch()
            return first, second

        first, second = run(main())
        assert first == [0, 1, 2]
        assert second == [3, 4]

    def test_cancelled_collection_spills_to_drain(self):
        async def main():
            batcher = MicroBatcher(max_queue=8, max_batch=4, window_s=5.0)
            batcher.start()
            await batcher.put("x")
            task = asyncio.ensure_future(batcher.next_batch())
            await asyncio.sleep(0.02)  # batch open, window still counting
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            return batcher.drain()

        assert run(main()) == ["x"]


class TestServiceHotSwap:
    def test_hot_swap_while_running_switches_answers(
        self, engine, tmp_path_factory
    ):
        from repro.serving import save_artifact

        root = tmp_path_factory.mktemp("service-swap")
        v1, v2 = root / "v1", root / "v2"
        save_artifact(engine, v1, scenario="synthetic/biased")
        twin = ReStore.load(v1)
        delta = twin.apply_mutations(
            deletes={"ta": [int(k) for k in twin.db.table("ta")["id"][:5]]}
        )
        save_artifact(twin, v2, scenario="synthetic/biased", parent=v1,
                      delta=delta)
        expected_new = ReStore.load(v2).answer(
            parse_query(COMPLETE_ONLY_SQL)
        ).result.values

        async def main():
            service = CompletionService(ReStore.load(v1))
            async with service:
                before = await service.submit(COMPLETE_ONLY_SQL)
                info = await service.hot_swap(v2)
                after = await service.submit(COMPLETE_ONLY_SQL)
                stats = service.core.stats()
            return before, info, after, stats, service

        before, info, after, stats, service = run(main())
        assert info["lineage"]["parent_path"] == str(v1)
        assert after.result.values == expected_new
        assert after.result.values != before.result.values
        assert stats.swaps == 1
        # the shell's engine reference follows the core's
        assert service.engine is service.core.engine
