"""Tests for progressive streaming in :mod:`repro.serving.service`.

``submit_progressive`` streams :class:`~repro.core.Refinement` objects per
request; identical in-flight (query, budget) pairs share **one** engine-side
refinement run — late subscribers replay the refinements already emitted and
then stream live, so every subscriber observes the same sequence.  The
stats surface gains refinement metrics (refinements per flight, budget
utilization, partial-cache counters).
"""

import asyncio

import pytest

from repro import ReStore, ReStoreConfig, parse_query
from repro.core import ModelConfig, SamplingBudget
from repro.incomplete.registry import make_scenario_dataset
from repro.nn import TrainConfig
from repro.serving import CompletionService, ServiceClosedError, ServiceConfig

FAST = TrainConfig(epochs=3, batch_size=128, lr=1e-2, patience=2)

PROGRESSIVE_SQL = "SELECT COUNT(*) FROM ta NATURAL JOIN tb WHERE b = 'v1';"


@pytest.fixture(scope="module")
def engine() -> ReStore:
    dataset = make_scenario_dataset(
        "synthetic/biased", keep_rate=0.5, seed=1, scale=0.2
    )
    # chunk_size pins one canonical grid for full, pushed and progressive
    # runs, which is what makes their answers bitwise-comparable.
    config = ReStoreConfig(model=ModelConfig(train=FAST), seed=3, chunk_size=16)
    return ReStore.from_dataset(dataset, config).fit()


@pytest.fixture()
def fresh_engine(engine) -> ReStore:
    engine.clear_cache()
    return engine


def run(coro):
    return asyncio.run(coro)


async def collect(service, sql=PROGRESSIVE_SQL, budget=None):
    refinements = []
    async for refinement in service.submit_progressive(sql, budget=budget):
        refinements.append(refinement)
    return refinements


class TestRefinementStream:
    def test_streams_to_exact_final(self, fresh_engine):
        async def main():
            async with CompletionService(fresh_engine) as service:
                refinements = await collect(service)
                exact = await service.submit(PROGRESSIVE_SQL)
                return refinements, exact

        refinements, exact = run(main())
        assert refinements and refinements[-1].final
        assert refinements[-1].result.scalar == exact.result.scalar
        completed = [r.chunks_completed for r in refinements]
        assert completed == sorted(set(completed))

    def test_budget_truncates_stream(self, fresh_engine):
        async def main():
            async with CompletionService(fresh_engine) as service:
                return await collect(
                    service, budget=SamplingBudget(initial_chunks=1, max_chunks=1)
                )

        refinements = run(main())
        assert len(refinements) == 1
        assert not refinements[-1].final
        assert refinements[-1].budget_utilization < 1.0

    def test_complete_only_query_single_final(self, fresh_engine):
        async def main():
            async with CompletionService(fresh_engine) as service:
                return await collect(service, sql="SELECT COUNT(*) FROM ta;")

        [only] = run(main())
        assert only.final and only.chunks_total == 0


class TestCoalescing:
    def test_identical_inflight_queries_share_one_flight(self, fresh_engine):
        n_clients = 5

        async def main():
            async with CompletionService(fresh_engine) as service:
                sequences = await asyncio.gather(
                    *(collect(service) for _ in range(n_clients))
                )
                return sequences, service.stats()

        sequences, stats = run(main())
        progressive = stats.progressive
        assert progressive["queries"] == n_clients
        assert progressive["flights"] == 1
        assert progressive["coalesced_queries"] == n_clients - 1
        # one refinement sequence, observed identically by every subscriber
        first = [(r.index, r.chunks_completed, r.result.scalar)
                 for r in sequences[0]]
        for sequence in sequences[1:]:
            assert [(r.index, r.chunks_completed, r.result.scalar)
                    for r in sequence] == first
        assert progressive["refinements_emitted"] == len(first)

    def test_distinct_budgets_run_separately(self, fresh_engine):
        async def main():
            async with CompletionService(fresh_engine) as service:
                await asyncio.gather(
                    collect(service, budget=SamplingBudget(initial_chunks=1)),
                    collect(service, budget=SamplingBudget(initial_chunks=2)),
                )
                return service.stats()

        stats = run(main())
        assert stats.progressive["flights"] == 2
        assert stats.progressive["coalesced_queries"] == 0

    def test_sequential_requests_are_new_flights(self, fresh_engine):
        async def main():
            async with CompletionService(fresh_engine) as service:
                first = await collect(service)
                second = await collect(service)
                return first, second, service.stats()

        first, second, stats = run(main())
        assert stats.progressive["flights"] == 2
        assert first[-1].result.scalar == second[-1].result.scalar


class TestStatsAndErrors:
    def test_stats_surface(self, fresh_engine):
        async def main():
            async with CompletionService(fresh_engine) as service:
                await collect(service)
                return service.stats()

        stats = run(main())
        progressive = stats.as_dict()["progressive"]
        assert progressive["refinements_emitted"] >= 1
        assert progressive["mean_refinements_per_flight"] >= 1.0
        assert 0.0 < progressive["mean_budget_utilization"] <= 1.0
        partial = stats.as_dict()["partial_cache"]
        assert {"hits", "misses", "subset_hits"} <= set(partial)

    def test_unknown_column_raises(self, fresh_engine):
        async def main():
            async with CompletionService(fresh_engine) as service:
                async for _ in service.submit_progressive(
                    "SELECT COUNT(*) FROM ta WHERE nope = 1;"
                ):
                    pass

        with pytest.raises(ValueError, match="nope"):
            run(main())

    def test_submit_after_close_raises(self, fresh_engine):
        async def main():
            service = CompletionService(fresh_engine)
            await service.start()
            await service.close()
            async for _ in service.submit_progressive(PROGRESSIVE_SQL):
                pass

        with pytest.raises(ServiceClosedError):
            run(main())
