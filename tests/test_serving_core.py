"""Tests for :mod:`repro.serving.core` — the transport-agnostic core.

The core is the synchronous brain every shell wraps, so it must be fully
exercisable without an event loop: config validation, FIFO admission,
micro-batch grouping, single-flight join coalescing (including the
threaded race), progressive flight replay, and the stats surface — all
with plain threads.  A source-level test pins the headline invariant:
``serving/core.py`` imports no asyncio.
"""

import threading

import pytest

from repro import ReStore, ReStoreConfig, parse_query
from repro.core import ModelConfig
from repro.errors import ConfigurationError, ServiceOverloadedError
from repro.incomplete.registry import make_scenario_dataset
from repro.nn import TrainConfig
from repro.serving import (
    AdmissionGate,
    CoreRequest,
    ProgressiveFlight,
    ServiceConfig,
    ServingCore,
    SyncMicroBatcher,
)
from repro.serving.core import FLIGHT_DONE

FAST = TrainConfig(epochs=3, batch_size=128, lr=1e-2, patience=2)

COMPLETION_SQL = "SELECT COUNT(*) FROM ta NATURAL JOIN tb WHERE b = 'v1';"
COMPLETE_ONLY_SQL = "SELECT COUNT(*) FROM ta;"
GROUPED_SQL = "SELECT COUNT(*) FROM ta NATURAL JOIN tb GROUP BY a;"


@pytest.fixture(scope="module")
def engine() -> ReStore:
    dataset = make_scenario_dataset(
        "synthetic/biased", keep_rate=0.5, seed=1, scale=0.2
    )
    config = ReStoreConfig(model=ModelConfig(train=FAST), seed=3)
    return ReStore.from_dataset(dataset, config).fit()


@pytest.fixture()
def core(engine) -> ServingCore:
    engine.clear_cache()
    return ServingCore(engine)


def _request(core: ServingCore, sql: str, **kwargs) -> CoreRequest:
    return CoreRequest(
        query=core.prepare(sql), enqueued_at=core.clock(), **kwargs
    )


# ----------------------------------------------------------------------
# The headline invariant: no asyncio in the core
# ----------------------------------------------------------------------


class TestTransportAgnostic:
    def test_core_module_imports_no_asyncio(self):
        import ast

        import repro.serving.core as core_module

        tree = ast.parse(open(core_module.__file__).read())
        imported = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                imported.update(alias.name.split(".")[0] for alias in node.names)
            elif isinstance(node, ast.ImportFrom) and node.module:
                imported.add(node.module.split(".")[0])
        assert "asyncio" not in imported
        assert "asyncio" not in {
            name.split(".")[0] for name in list(vars(core_module))
        }

    def test_core_usable_without_event_loop(self, core):
        # Plain call stack, no loop anywhere: submit answers directly.
        answer = core.submit(COMPLETION_SQL)
        assert answer.used_completion is True
        assert core.stats().completed == 1


# ----------------------------------------------------------------------
# ServiceConfig validation
# ----------------------------------------------------------------------


class TestServiceConfigValidation:
    @pytest.mark.parametrize(
        "field", ["max_queue", "max_batch", "n_workers", "latency_window"]
    )
    def test_rejects_non_positive_ints_naming_the_field(self, field):
        with pytest.raises(ConfigurationError, match=f"ServiceConfig.{field}"):
            ServiceConfig(**{field: 0})
        with pytest.raises(ConfigurationError, match=f"ServiceConfig.{field}"):
            ServiceConfig(**{field: -3})

    @pytest.mark.parametrize(
        "field", ["max_queue", "max_batch", "n_workers", "latency_window"]
    )
    def test_rejects_non_integers(self, field):
        with pytest.raises(ConfigurationError, match=f"ServiceConfig.{field}"):
            ServiceConfig(**{field: 2.5})
        with pytest.raises(ConfigurationError, match=f"ServiceConfig.{field}"):
            ServiceConfig(**{field: True})

    def test_rejects_negative_and_nan_window(self):
        with pytest.raises(
            ConfigurationError, match="ServiceConfig.batch_window_ms"
        ):
            ServiceConfig(batch_window_ms=-1.0)
        with pytest.raises(
            ConfigurationError, match="ServiceConfig.batch_window_ms"
        ):
            ServiceConfig(batch_window_ms=float("nan"))

    def test_configuration_error_is_a_value_error(self):
        with pytest.raises(ValueError):
            ServiceConfig(max_batch=0)

    def test_valid_config_passes(self):
        config = ServiceConfig(max_queue=8, max_batch=4, batch_window_ms=0.0)
        assert config.batch_window_s == 0.0


# ----------------------------------------------------------------------
# AdmissionGate
# ----------------------------------------------------------------------


class TestAdmissionGate:
    def test_try_acquire_bounded_by_capacity(self):
        gate = AdmissionGate(2)
        assert gate.try_acquire() and gate.try_acquire()
        assert not gate.try_acquire()
        gate.release()
        assert gate.try_acquire()

    def test_grant_callbacks_fire_fifo(self):
        gate = AdmissionGate(1)
        assert gate.try_acquire()
        order = []
        gate.acquire(lambda: order.append("first"))
        gate.acquire(lambda: order.append("second"))
        assert order == []  # both queued behind the held slot
        gate.release()
        assert order == ["first"]
        gate.release()
        assert order == ["first", "second"]
        assert gate.in_service() == 1  # second's slot is still held

    def test_try_acquire_never_jumps_the_queue(self):
        gate = AdmissionGate(1)
        assert gate.try_acquire()
        gate.acquire(lambda: None)  # a FIFO waiter is parked
        gate.release()  # waiter inherits the slot...
        assert not gate.try_acquire() or gate.in_service() <= 1

    def test_blocking_acquire_wakes_on_release(self):
        gate = AdmissionGate(1)
        assert gate.try_acquire()
        acquired = threading.Event()

        def blocker():
            gate.acquire()
            acquired.set()

        thread = threading.Thread(target=blocker, daemon=True)
        thread.start()
        assert not acquired.wait(0.1)
        gate.release()
        assert acquired.wait(2.0)
        thread.join()

    def test_rejects_capacity_below_one(self):
        with pytest.raises(ConfigurationError):
            AdmissionGate(0)


# ----------------------------------------------------------------------
# SyncMicroBatcher
# ----------------------------------------------------------------------


class TestSyncMicroBatcher:
    def test_collects_up_to_max_batch(self):
        batcher = SyncMicroBatcher(max_queue=16, max_batch=3, window_s=0.2)
        for i in range(5):
            batcher.put(i)
        assert batcher.next_batch() == [0, 1, 2]
        assert batcher.next_batch() == [3, 4]

    def test_stop_drains_then_signals_none(self):
        batcher = SyncMicroBatcher(max_queue=16, max_batch=8, window_s=0.0)
        batcher.put("x")
        batcher.stop()
        assert batcher.next_batch(poll_s=0.01) == ["x"]
        assert batcher.next_batch(poll_s=0.01) is None

    def test_full_queue_rejects_without_wait(self):
        batcher = SyncMicroBatcher(max_queue=1, max_batch=8, window_s=0.0)
        batcher.put("x")
        with pytest.raises(ServiceOverloadedError):
            batcher.put("y", wait=False)


# ----------------------------------------------------------------------
# Synchronous serving: submit / serve_batch
# ----------------------------------------------------------------------


class TestCoreServing:
    def test_submit_matches_direct_engine(self, core):
        direct = core.engine.answer(parse_query(COMPLETION_SQL))
        core.engine.clear_cache()
        served = core.submit(COMPLETION_SQL)
        assert served.result.values == direct.result.values

    def test_serve_batch_aligns_results_with_requests(self, core):
        batch = [
            _request(core, COMPLETION_SQL),
            _request(core, COMPLETE_ONLY_SQL),
            _request(core, GROUPED_SQL),
        ]
        results = core.serve_batch(batch)
        assert len(results) == 3
        assert results[1].used_completion is False  # ta is complete
        assert results[0].used_completion and results[2].used_completion

    def test_one_batch_of_identical_queries_starts_one_join(self, core):
        batch = [_request(core, COMPLETION_SQL) for _ in range(6)]
        results = core.serve_batch(batch)
        assert all(not isinstance(r, BaseException) for r in results)
        stats = core.stats()
        assert stats.joins_started == 1
        assert stats.coalesced_requests == 5
        assert stats.cache["misses"] == 1

    def test_submit_wait_false_rejects_when_full(self, core):
        small = ServingCore(core.engine, ServiceConfig(max_queue=1))
        assert small.gate.try_acquire()  # hold the only slot
        with pytest.raises(ServiceOverloadedError):
            small.submit(COMPLETE_ONLY_SQL, wait=False)
        small.gate.release()
        assert small.stats().rejected == 1

    def test_unknown_column_raises_naming_candidates(self, core):
        # Validation happens in prepare(), before admission: the request
        # is never counted (same observable behaviour as the asyncio shell).
        with pytest.raises(ValueError, match="nonexistent"):
            core.submit("SELECT AVG(nonexistent) FROM ta;")
        assert core.stats().requests == 0

    def test_threaded_single_flight_across_groups(self, core):
        """Concurrent serve_group calls for one signature run one join."""
        n_threads = 4
        batchers = [
            [_request(core, COMPLETION_SQL) for _ in range(2)]
            for _ in range(n_threads)
        ]
        groups = [core.group(b)[0] for b in batchers]
        barrier = threading.Barrier(n_threads)
        outcomes = [None] * n_threads

        def worker(i):
            barrier.wait()
            [(signature, (model, members))] = list(groups[i].items())
            outcomes[i] = core.serve_group(model, members, signature)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for result_list in outcomes:
            assert all(not isinstance(r, BaseException) for r in result_list)
        stats = core.stats()
        assert stats.joins_started == 1
        assert stats.cache["misses"] == 1
        # 8 requests total, 1 leader computed the join: 7 shared it (some
        # via the in-flight wait, some via the cache — both are coalescing
        # or plain hits; the flight-level counter stays bounded).
        assert 0 < stats.coalesced_requests <= 7


# ----------------------------------------------------------------------
# Progressive flights
# ----------------------------------------------------------------------


class TestProgressiveFlight:
    def test_subscribe_replays_history_then_streams(self):
        flight = ProgressiveFlight()
        flight.publish("r1")
        flight.publish("r2")
        seen = []
        flight.subscribe(seen.append)
        assert seen == ["r1", "r2"]
        flight.publish("r3")
        flight.finish(None)
        assert seen == ["r1", "r2", "r3", FLIGHT_DONE]

    def test_late_subscriber_gets_terminal_sentinel(self):
        flight = ProgressiveFlight()
        flight.publish("r1")
        flight.finish(None)
        seen = []
        flight.subscribe(seen.append)
        assert seen == ["r1", FLIGHT_DONE]

    def test_error_delivered_instead_of_done(self):
        flight = ProgressiveFlight()
        boom = RuntimeError("boom")
        seen = []
        flight.subscribe(seen.append)
        flight.finish(boom)
        assert seen == [boom]

    def test_open_progressive_coalesces_by_key(self, core):
        key = ("q", "None", None)
        first, created_first = core.open_progressive(key)
        second, created_second = core.open_progressive(key)
        assert first is second
        assert created_first and not created_second
        stats = core.stats()
        assert stats.progressive["flights"] == 1
        assert stats.progressive["coalesced_queries"] == 1
        # Finished flights deregister: the next opener starts fresh.
        core._progressive_flights.pop(key, None)
        third, created_third = core.open_progressive(key)
        assert created_third and third is not first


# ----------------------------------------------------------------------
# Stats
# ----------------------------------------------------------------------


class TestCoreStats:
    def test_stats_round_trip_as_dict(self, core):
        core.submit(COMPLETION_SQL)
        stats = core.stats(queued=7)
        payload = stats.as_dict()
        assert payload["queued"] == 7
        assert payload["requests"] == 1
        assert payload["completed"] == 1
        assert payload["p50_latency_ms"] >= 0.0
        assert set(payload["progressive"]) >= {
            "queries", "flights", "coalesced_queries",
        }

    def test_latency_percentiles_use_injected_clock(self, engine):
        engine.clear_cache()
        fake_now = [0.0]
        core = ServingCore(engine, clock=lambda: fake_now[0])
        request = _request(core, COMPLETE_ONLY_SQL)
        fake_now[0] = 0.25  # the request "waited" 250 ms
        [answer] = core.serve_batch([request])
        assert not isinstance(answer, BaseException)
        stats = core.stats()
        assert stats.p50_latency_ms == pytest.approx(250.0)


# ----------------------------------------------------------------------
# Hot swap
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def swap_artifacts(engine, tmp_path_factory):
    """A v1 artifact of the module engine plus a mutated v2 upgrade."""
    from repro.serving import save_artifact

    root = tmp_path_factory.mktemp("core-swap")
    v1 = root / "v1"
    save_artifact(engine, v1, scenario="synthetic/biased")
    twin = ReStore.load(v1)
    table = twin.db.table("ta")
    delta = twin.apply_mutations(
        deletes={"ta": [int(k) for k in table["id"][:5]]}
    )
    v2 = root / "v2"
    save_artifact(twin, v2, scenario="synthetic/biased", parent=v1,
                  delta=delta)
    return v1, v2


class TestHotSwap:
    def test_swap_switches_answers_and_counts(self, swap_artifacts):
        v1, v2 = swap_artifacts
        core = ServingCore(ReStore.load(v1))
        before = core.submit(COMPLETE_ONLY_SQL).result.values
        info = core.hot_swap(v2)
        assert info["scenario"] == "synthetic/biased"
        assert info["lineage"]["parent_path"] == str(v1)
        after = core.submit(COMPLETE_ONLY_SQL).result.values
        assert after != before
        assert after == ReStore.load(v2).answer(
            parse_query(COMPLETE_ONLY_SQL)
        ).result.values
        stats = core.stats()
        assert stats.swaps == 1
        assert stats.as_dict()["swaps"] == 1

    def test_corrupt_artifact_rejected_and_old_engine_keeps_serving(
        self, swap_artifacts, tmp_path
    ):
        from repro.errors import ArtifactError

        v1, _ = swap_artifacts
        core = ServingCore(ReStore.load(v1))
        engine_before = core.engine
        before = core.submit(COMPLETE_ONLY_SQL).result.values
        corrupt = tmp_path / "corrupt"
        corrupt.mkdir()
        with pytest.raises(ArtifactError):
            core.hot_swap(corrupt)
        # validate-before-swap: the reference never moved
        assert core.engine is engine_before
        assert core.stats().swaps == 0
        assert core.submit(COMPLETE_ONLY_SQL).result.values == before
