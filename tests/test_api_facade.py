"""Tests for the public API facade and the error-taxonomy redesign.

The api_redesign contract: ``repro`` and ``repro.serving`` declare an
explicit, documented ``__all__`` whose every name resolves; the error
taxonomy lives in :mod:`repro.errors` under :class:`ReStoreError` with
stable wire codes; and the *old* import homes of the error classes keep
working through deprecation shims that warn exactly once and hand back
the very same class objects.
"""

import importlib
import subprocess
import sys

import pytest

import repro
import repro.serving
from repro.errors import (
    WIRE_CODES,
    ArtifactError,
    ArtifactIntegrityError,
    ArtifactSchemaError,
    ArtifactVersionError,
    ConfigurationError,
    ProtocolError,
    QueryValidationError,
    ReStoreError,
    ServiceClosedError,
    ServiceOverloadedError,
    WorkerError,
    error_for_code,
    wire_code,
)


class TestFacadeAll:
    @pytest.mark.parametrize("module", [repro, repro.serving])
    def test_every_all_name_resolves(self, module):
        assert module.__all__ == sorted(set(module.__all__), key=module.__all__.index)
        for name in module.__all__:
            assert getattr(module, name) is not None, name

    def test_top_level_exports_the_redesigned_layers(self):
        for name in ("ServingCore", "CompletionService", "ServiceWorker",
                     "FleetRouter", "FleetConfig", "ReStoreError"):
            assert name in repro.__all__

    def test_serving_all_is_grouped_and_complete(self):
        for name in ("ServingCore", "ServiceConfig", "CompletionService",
                     "ServiceWorker", "FleetRouter", "PROTOCOL_VERSION",
                     "save_artifact", "load_artifact", "ReStoreError"):
            assert name in repro.serving.__all__


class TestErrorTaxonomy:
    ALL_ERRORS = [
        ConfigurationError, QueryValidationError, ServiceOverloadedError,
        ServiceClosedError, ProtocolError, WorkerError, ArtifactError,
        ArtifactVersionError, ArtifactIntegrityError, ArtifactSchemaError,
    ]

    def test_single_base_class(self):
        for cls in self.ALL_ERRORS:
            assert issubclass(cls, ReStoreError)
        assert issubclass(ReStoreError, Exception)

    def test_stdlib_bases_preserved_for_existing_handlers(self):
        # Pre-redesign code caught ValueError / RuntimeError; the taxonomy
        # keeps those contracts.
        for cls in (ConfigurationError, QueryValidationError, ArtifactError,
                    ArtifactVersionError, ArtifactIntegrityError,
                    ArtifactSchemaError):
            assert issubclass(cls, ValueError), cls
        for cls in (ServiceOverloadedError, ServiceClosedError,
                    ProtocolError, WorkerError):
            assert issubclass(cls, RuntimeError), cls

    def test_codes_are_stable_and_unique(self):
        codes = [cls.code for cls in self.ALL_ERRORS]
        assert len(set(codes)) == len(codes)
        assert wire_code(ServiceOverloadedError("x")) == "service_overloaded"
        assert wire_code(QueryValidationError("x")) == "query_invalid"
        assert wire_code(KeyError("not ours")) == "internal"

    def test_wire_codes_round_trip(self):
        for code, cls in WIRE_CODES.items():
            restored = error_for_code(code, "msg")
            assert isinstance(restored, cls)
            assert restored.code == code
        fallback = error_for_code("unheard_of_code", "msg")
        assert isinstance(fallback, WorkerError)


class TestDeprecationShims:
    """Old import homes resolve, warn once, and return the same objects.

    Each check runs in a fresh interpreter: the shims warn once per
    *process*, so an in-suite import (or another test) would otherwise
    consume the warning.
    """

    CASES = [
        ("repro.serving.artifacts", "ArtifactError"),
        ("repro.serving.artifacts", "ArtifactVersionError"),
        ("repro.serving.artifacts", "ArtifactIntegrityError"),
        ("repro.serving.artifacts", "ArtifactSchemaError"),
        ("repro.serving.batching", "ServiceOverloadedError"),
        ("repro.serving.batching", "ServiceClosedError"),
    ]

    @pytest.mark.parametrize("module_name,attr", CASES)
    def test_old_path_warns_once_and_returns_canonical_object(
        self, module_name, attr
    ):
        script = f"""
import warnings
with warnings.catch_warnings(record=True) as caught:
    warnings.simplefilter("always")
    import {module_name} as old_home
    first = old_home.{attr}
    second = old_home.{attr}
import repro.errors
assert first is second is getattr(repro.errors, "{attr}")
deprecations = [w for w in caught if w.category is DeprecationWarning]
assert len(deprecations) == 1, [str(w.message) for w in caught]
message = str(deprecations[0].message)
assert "{attr}" in message and "repro.errors" in message
print("OK")
"""
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, timeout=120,
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip() == "OK"

    @pytest.mark.parametrize("module_name", sorted({m for m, _a in CASES}))
    def test_unknown_attribute_still_raises_attribute_error(self, module_name):
        module = importlib.import_module(module_name)
        with pytest.raises(AttributeError, match="NoSuchThing"):
            module.NoSuchThing

    def test_new_canonical_imports_do_not_warn(self):
        # Fresh interpreter on purpose: reloading repro.errors in-process
        # would mint new class objects and poison later isinstance checks.
        script = """
import warnings
with warnings.catch_warnings(record=True) as caught:
    warnings.simplefilter("always")
    import repro.errors
    import repro.serving
deprecations = [w for w in caught if w.category is DeprecationWarning]
assert deprecations == [], [str(w.message) for w in deprecations]
print("OK")
"""
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, timeout=120,
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip() == "OK"
