"""Tests for §5 advanced selection (derived scenarios) and selection utils."""


from repro.core import (
    BiasDirection,
    CandidateScore,
    ReStore,
    ReStoreConfig,
    ModelConfig,
    SuspectedBias,
    apply_suspected_bias,
    basic_filter,
    rank_by_derived_scenario,
)
from repro.datasets import SyntheticConfig, generate_synthetic
from repro.incomplete import RemovalSpec, make_incomplete
from repro.nn import TrainConfig


class _FakeModel:
    def __init__(self, kind, path):
        self.kind = kind

        class _Layout:
            pass

        self.layout = _Layout()
        self.layout.path = path


def fake_candidate(signal, kind="ar", tables=("a", "b")):
    from repro.relational import CompletionPath
    return CandidateScore(
        model=_FakeModel(kind, CompletionPath(tables)),
        target_loss=1.0,
        marginal_loss=1.0 + signal,
    )


class TestBasicFilter:
    def test_keeps_positive_signal(self):
        good = fake_candidate(0.5)
        bad = fake_candidate(-0.2, tables=("c", "b"))
        kept = basic_filter([good, bad])
        assert kept == [good]

    def test_keeps_best_if_all_fail(self):
        a = fake_candidate(-0.5)
        b = fake_candidate(-0.1, tables=("c", "b"))
        kept = basic_filter([a, b])
        assert kept == [b]

    def test_sorted_by_signal(self):
        a = fake_candidate(0.1)
        b = fake_candidate(0.9, tables=("c", "b"))
        kept = basic_filter([a, b])
        assert kept[0] is b


class TestRanking:
    def test_rank_by_derived(self):
        a = fake_candidate(0.1)
        b = fake_candidate(0.2, tables=("c", "b"))
        ranked = rank_by_derived_scenario([a, b], lambda c: 1.0 if c is a else 0.0)
        assert ranked[0] is a
        assert ranked[0].derived_score == 1.0

    def test_suspected_bias_prefers_correct_direction(self):
        a = fake_candidate(0.1)
        b = fake_candidate(0.2, tables=("c", "b"))
        bias = SuspectedBias("x", BiasDirection.UNDERESTIMATED)
        ranked = apply_suspected_bias(
            [b, a], bias,
            completed_aggregate=lambda c: 10.0 if c is a else 1.0,
            incomplete_aggregate=5.0,
        )
        assert ranked[0] is a          # only a moves the average up
        assert ranked[0].direction_ok
        assert not ranked[1].direction_ok

    def test_suspected_bias_keeps_order_if_none_correct(self):
        a = fake_candidate(0.1)
        b = fake_candidate(0.2, tables=("c", "b"))
        bias = SuspectedBias("x", BiasDirection.UNDERESTIMATED)
        ranked = apply_suspected_bias(
            [b, a], bias,
            completed_aggregate=lambda c: 0.0,
            incomplete_aggregate=5.0,
        )
        assert ranked == [b, a]


class TestAdvancedSelectionEndToEnd:
    def test_derived_scenario_selection(self):
        db = generate_synthetic(SyntheticConfig(num_parents=400,
                                                predictability=0.9, seed=0))
        dataset = make_incomplete(db, [RemovalSpec("tb", "b", 0.6, 0.4)],
                                  tf_keep_rate=0.5, seed=1)
        config = ReStoreConfig(model=ModelConfig(
            hidden=(32, 32),
            train=TrainConfig(epochs=6, batch_size=128, lr=1e-2, patience=3),
        ))
        engine = ReStore.from_dataset(dataset, config).fit()
        choice = engine.advanced_select("tb", dataset, seed=2)
        assert choice.derived_score is not None
        # The chosen candidate has the best derived score.
        scores = [c.derived_score for c in engine.candidates("tb")
                  if c.derived_score is not None]
        assert choice.derived_score == max(scores)
