"""Tests for optimizers and the generic training loop."""

import numpy as np
import pytest

from repro.nn import MLP, Adam, SGD, Tensor, TrainConfig, clip_grad_norm, train
from repro.nn import functional as F


class TestSGD:
    def test_converges_on_quadratic(self):
        x = Tensor([5.0], requires_grad=True)
        opt = SGD([x], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            (x * x).backward()
            opt.step()
        assert abs(x.item()) < 1e-3

    def test_momentum_accelerates(self):
        def run(momentum):
            x = Tensor([5.0], requires_grad=True)
            opt = SGD([x], lr=0.01, momentum=momentum)
            for _ in range(50):
                opt.zero_grad()
                (x * x).backward()
                opt.step()
            return abs(x.item())

        assert run(0.9) < run(0.0)

    def test_requires_parameters(self):
        with pytest.raises(ValueError):
            SGD([])


class TestAdam:
    def test_converges_on_quadratic(self):
        x = Tensor([3.0], requires_grad=True)
        opt = Adam([x], lr=0.3)
        for _ in range(200):
            opt.zero_grad()
            (x * x).backward()
            opt.step()
        assert abs(x.item()) < 1e-2

    def test_skips_gradless_params(self):
        x = Tensor([1.0], requires_grad=True)
        y = Tensor([1.0], requires_grad=True)
        opt = Adam([x, y], lr=0.1)
        opt.zero_grad()
        (x * x).backward()
        opt.step()
        assert y.item() == 1.0
        assert x.item() != 1.0

    def test_weight_decay_shrinks(self):
        x = Tensor([1.0], requires_grad=True)
        opt = Adam([x], lr=0.01, weight_decay=1.0)
        opt.zero_grad()
        # Zero loss gradient; only decay acts.
        (x * 0.0).backward()
        opt.step()
        assert x.item() < 1.0


class TestGradClip:
    def test_clips_large_norm(self):
        x = Tensor([1.0], requires_grad=True)
        x.grad = np.array([100.0])
        norm = clip_grad_norm([x], max_norm=1.0)
        assert norm == pytest.approx(100.0)
        np.testing.assert_allclose(x.grad, [1.0])

    def test_leaves_small_norm(self):
        x = Tensor([1.0], requires_grad=True)
        x.grad = np.array([0.5])
        clip_grad_norm([x], max_norm=1.0)
        np.testing.assert_allclose(x.grad, [0.5])


class TestTrainLoop:
    def _regression_problem(self, seed=0):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(300, 3))
        y = (x.sum(axis=1) > 0).astype(int)
        model = MLP(3, [16], 2, rng=np.random.default_rng(seed + 1))

        def loss_fn(idx):
            return F.cross_entropy(model(Tensor(x[idx])), y[idx])

        def eval_fn(idx):
            logits = model(Tensor(x[idx])).numpy()
            return float(F.nll_from_logits(logits, y[idx]).mean())

        return model, x, y, loss_fn, eval_fn

    def test_loss_decreases(self):
        model, x, y, loss_fn, eval_fn = self._regression_problem()
        result = train(model, len(x), loss_fn, eval_fn,
                       TrainConfig(epochs=10, batch_size=64, lr=1e-2, seed=0))
        assert result.train_losses[-1] < result.train_losses[0]
        assert result.epochs_run >= 3

    def test_early_stopping_restores_best(self):
        model, x, y, loss_fn, eval_fn = self._regression_problem(seed=1)
        result = train(model, len(x), loss_fn, eval_fn,
                       TrainConfig(epochs=40, batch_size=64, lr=5e-2, seed=0,
                                   patience=2))
        # Final model must score (close to) the best recorded val loss.
        rng = np.random.default_rng(0)
        order = rng.permutation(len(x))
        val_idx = order[:max(1, int(len(x) * 0.1))]
        np.testing.assert_allclose(eval_fn(val_idx), result.best_val_loss, atol=1e-9)

    def test_needs_two_examples(self):
        model, *_ , loss_fn, eval_fn = self._regression_problem()
        with pytest.raises(ValueError):
            train(model, 1, loss_fn, eval_fn)

    def test_deterministic_given_seed(self):
        res = []
        for _ in range(2):
            model, x, y, loss_fn, eval_fn = self._regression_problem(seed=7)
            r = train(model, len(x), loss_fn, eval_fn,
                      TrainConfig(epochs=3, batch_size=64, seed=11))
            res.append(r.train_losses)
        np.testing.assert_allclose(res[0], res[1])

    def test_records_wall_time(self):
        model, x, y, loss_fn, eval_fn = self._regression_problem(seed=2)
        result = train(model, len(x), loss_fn, eval_fn,
                       TrainConfig(epochs=2, batch_size=128))
        assert result.wall_time_s > 0
