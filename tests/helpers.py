"""Shared test helpers (imported absolutely — the tests dir is not a package)."""

import numpy as np


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central finite differences of scalar-valued fn w.r.t. array x."""
    grad = np.zeros_like(x, dtype=float)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = fn(x)
        flat[i] = orig - eps
        down = fn(x)
        flat[i] = orig
        grad_flat[i] = (up - down) / (2 * eps)
    return grad
