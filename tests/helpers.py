"""Shared test helpers (imported absolutely — the tests dir is not a package)."""

import numpy as np


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central finite differences of scalar-valued fn w.r.t. array x."""
    grad = np.zeros_like(x, dtype=float)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = fn(x)
        flat[i] = orig - eps
        down = fn(x)
        flat[i] = orig
        grad_flat[i] = (up - down) / (2 * eps)
    return grad


def numeric_grad_arrays(fn, arrays, eps: float = 1e-6):
    """Finite-difference gradients of a thunk w.r.t. several arrays.

    ``fn`` takes no arguments and reads the ``arrays`` in place (the
    gradcheck harness points it at live parameter buffers); each array is
    perturbed entry by entry with central differences.  Returns one
    gradient array per input, aligned by position.
    """
    grads = []
    for array in arrays:
        grad = np.zeros_like(array, dtype=float)
        flat = array.reshape(-1)
        grad_flat = grad.reshape(-1)
        for i in range(flat.size):
            orig = flat[i]
            flat[i] = orig + eps
            up = fn()
            flat[i] = orig - eps
            down = fn()
            flat[i] = orig
            grad_flat[i] = (up - down) / (2 * eps)
        grads.append(grad)
    return grads


def relative_grad_error(actual: np.ndarray, reference: np.ndarray) -> float:
    """Max absolute deviation, scaled by the reference gradient's magnitude.

    The gradcheck tolerance of the fused-vs-autograd parity suite: a flat
    1e-12 floor keeps all-zero reference gradients comparable.
    """
    scale = max(float(np.abs(reference).max()), 1e-12)
    return float(np.abs(np.asarray(actual) - np.asarray(reference)).max()) / scale
