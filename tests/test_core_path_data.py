"""Tests for PathLayout and training-data assembly."""

import numpy as np
import pytest

from repro.core import PathLayout, assemble_training_data, build_encoders
from repro.datasets import HousingConfig, SyntheticConfig, generate_housing, generate_synthetic
from repro.incomplete import RemovalSpec, make_incomplete
from repro.relational import CompletionPath
from repro.relational.tuple_factors import TF_UNKNOWN


@pytest.fixture(scope="module")
def housing_setup():
    db = generate_housing(HousingConfig(seed=0, num_neighborhoods=40,
                                        num_landlords=150,
                                        apartments_per_neighborhood=8.0))
    dataset = make_incomplete(
        db, [RemovalSpec("apartment", "price", 0.5, 0.5)],
        tf_keep_rate=0.4, seed=1,
    )
    encoders = build_encoders(dataset.incomplete, num_bins=8)
    return db, dataset, encoders


class TestPathLayout:
    def test_variable_order(self, housing_setup):
        _, dataset, encoders = housing_setup
        layout = PathLayout(dataset.incomplete, dataset.annotation,
                            CompletionPath(("neighborhood", "apartment")), encoders)
        names = [v.name for v in layout.variables]
        # Evidence columns first, TF before the target columns.
        assert names[0].startswith("neighborhood.")
        tf_pos = next(i for i, n in enumerate(names) if n.startswith("tf:"))
        first_target = next(i for i, n in enumerate(names)
                            if n.startswith("apartment."))
        assert tf_pos < first_target

    def test_slot_ranges_partition(self, housing_setup):
        _, dataset, encoders = housing_setup
        layout = PathLayout(dataset.incomplete, dataset.annotation,
                            CompletionPath(("neighborhood", "apartment")), encoders)
        covered = []
        for slot in range(2):
            start, stop = layout.slot_range(slot)
            covered.extend(range(start, stop))
        assert covered == list(range(layout.num_variables))

    def test_n_to_1_has_no_tf(self, housing_setup):
        _, dataset, encoders = housing_setup
        layout = PathLayout(dataset.incomplete, dataset.annotation,
                            CompletionPath(("apartment", "landlord")), encoders)
        assert layout.tf_variable_index(1) is None
        assert not any(v.is_tuple_factor for v in layout.variables)

    def test_fan_out_tf_codec(self, housing_setup):
        _, dataset, encoders = housing_setup
        layout = PathLayout(dataset.incomplete, dataset.annotation,
                            CompletionPath(("neighborhood", "apartment")), encoders)
        codec = layout.tf_codec_for(1)
        # Adaptive cap covers the largest observed/annotated TF.
        fk = dataset.incomplete.fk_between("apartment", "neighborhood")
        annotated = layout.annotated_tfs(1)
        known = annotated[annotated != TF_UNKNOWN]
        assert codec.cap >= known.max()
        with pytest.raises(KeyError):
            layout.tf_codec_for(0)

    def test_annotated_tfs_mix_known_unknown(self, housing_setup):
        _, dataset, encoders = housing_setup
        layout = PathLayout(dataset.incomplete, dataset.annotation,
                            CompletionPath(("neighborhood", "apartment")), encoders)
        tfs = layout.annotated_tfs(1)
        assert (tfs == TF_UNKNOWN).any()
        assert (tfs != TF_UNKNOWN).any()

    def test_target_variables_are_last_slot(self, housing_setup):
        _, dataset, encoders = housing_setup
        layout = PathLayout(dataset.incomplete, dataset.annotation,
                            CompletionPath(("neighborhood", "apartment")), encoders)
        target_vars = layout.target_variables()
        assert target_vars == list(range(layout.slot_range(1)[0],
                                         layout.num_variables))

    def test_explicit_tf_cap(self, housing_setup):
        _, dataset, encoders = housing_setup
        layout = PathLayout(dataset.incomplete, dataset.annotation,
                            CompletionPath(("neighborhood", "apartment")),
                            encoders, tf_cap=7)
        assert layout.tf_codec_for(1).cap == 7


class TestTrainingData:
    def test_matrix_shape_and_bounds(self, housing_setup):
        _, dataset, encoders = housing_setup
        layout = PathLayout(dataset.incomplete, dataset.annotation,
                            CompletionPath(("neighborhood", "apartment")), encoders)
        data = assemble_training_data(layout)
        assert data.matrix.shape[1] == layout.num_variables
        assert data.num_rows == len(dataset.incomplete.table("apartment"))
        for i, spec in enumerate(layout.variables):
            assert data.matrix[:, i].min() >= 0
            assert data.matrix[:, i].max() < spec.vocab_size

    def test_row_positions_align(self, housing_setup):
        _, dataset, encoders = housing_setup
        layout = PathLayout(dataset.incomplete, dataset.annotation,
                            CompletionPath(("neighborhood", "apartment")), encoders)
        data = assemble_training_data(layout)
        apt = dataset.incomplete.table("apartment")
        nb = dataset.incomplete.table("neighborhood")
        # Each row's apartment must actually reference its neighborhood.
        apt_rows = data.row_positions["apartment"]
        nb_rows = data.row_positions["neighborhood"]
        refs = apt["neighborhood_id"][apt_rows]
        keys = nb["id"][nb_rows]
        np.testing.assert_array_equal(refs, keys)

    def test_known_tfs_encode_true_counts(self, housing_setup):
        db, dataset, encoders = housing_setup
        layout = PathLayout(dataset.incomplete, dataset.annotation,
                            CompletionPath(("neighborhood", "apartment")), encoders)
        data = assemble_training_data(layout)
        tf_idx = layout.tf_variable_index(1)
        codec = layout.tf_codec_for(1)
        annotated = layout.annotated_tfs(1)
        nb_rows = data.row_positions["neighborhood"]
        expected = codec.encode(annotated[nb_rows])
        np.testing.assert_array_equal(data.matrix[:, tf_idx], expected)

    def test_three_table_path(self, housing_setup):
        _, dataset, encoders = housing_setup
        layout = PathLayout(dataset.incomplete, dataset.annotation,
                            CompletionPath(("neighborhood", "apartment", "landlord")),
                            encoders)
        data = assemble_training_data(layout)
        assert set(data.row_positions) == {"neighborhood", "apartment", "landlord"}
        assert data.matrix.shape[1] == layout.num_variables

    def test_synthetic_two_table(self):
        db = generate_synthetic(SyntheticConfig(num_parents=100, seed=3))
        dataset = make_incomplete(db, [RemovalSpec("tb", "b", 0.5, 0.3)], seed=4)
        encoders = build_encoders(dataset.incomplete, num_bins=8)
        layout = PathLayout(dataset.incomplete, dataset.annotation,
                            CompletionPath(("ta", "tb")), encoders)
        data = assemble_training_data(layout)
        assert data.num_rows == len(dataset.incomplete.table("tb"))
