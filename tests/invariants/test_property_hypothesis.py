"""Hypothesis-driven property tests (optional dependency, own marker).

The same invariants as ``test_property_random.py``, but explored by
Hypothesis with shrinking.  The library is an *optional* test dependency:
when absent the module skips cleanly, and the whole file carries the
``hypothesis`` marker so CI can schedule it separately
(``-m "not hypothesis"`` keeps the harness dependency-free).
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.datasets import SyntheticConfig, generate_synthetic  # noqa: E402
from repro.incomplete import (  # noqa: E402
    MCAR,
    FKCascade,
    MARParent,
    MNARSelfMasking,
    RemovalSpec,
    ScenarioSpec,
    derive_selection_scenario,
    make_incomplete,
)

from harness_utils import dangling_parent_tables, keep_rate_tolerance  # noqa: E402

pytestmark = pytest.mark.hypothesis

_DB = generate_synthetic(SyntheticConfig(num_parents=220, seed=5))

_PROPERTY_SETTINGS = settings(
    max_examples=20, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

mechanism_strategy = st.one_of(
    st.just(None),
    st.just(MCAR()),
    st.floats(0.0, 1.0).map(
        lambda c: MARParent(parent_table="ta", attribute="a", correlation=c)
    ),
    st.floats(0.0, 1.0).map(
        lambda s: MNARSelfMasking(attribute="b", sharpness=s)
    ),
    st.just(FKCascade(parent_table="ta")),
)


def _build_spec(keep, corr, mechanism):
    if mechanism is None:
        return RemovalSpec("tb", "b", keep, corr)
    return RemovalSpec("tb", keep_rate=keep, mechanism=mechanism)


@_PROPERTY_SETTINGS
@given(keep=st.floats(0.15, 0.95), corr=st.floats(0.0, 1.0),
       mechanism=mechanism_strategy, seed=st.integers(0, 2**31 - 1))
def test_keep_rate_and_integrity(keep, corr, mechanism, seed):
    spec = _build_spec(keep, corr, mechanism)
    dataset = make_incomplete(_DB, [spec], seed=seed)
    n = len(_DB.table("tb"))
    assert abs(dataset.kept_fraction("tb") - keep) <= keep_rate_tolerance(n)
    for parent in dangling_parent_tables(dataset.incomplete):
        assert not dataset.annotation.is_complete(parent)


@_PROPERTY_SETTINGS
@given(keep=st.floats(0.4, 0.9), mechanism=mechanism_strategy,
       seed=st.integers(0, 2**31 - 1))
def test_derivation_always_composes(keep, mechanism, seed):
    spec = _build_spec(keep, 0.5, mechanism)
    dataset = make_incomplete(_DB, [spec], seed=seed)
    derived = derive_selection_scenario(dataset, seed=seed + 1)
    assert derived.complete is dataset.incomplete
    n = len(derived.complete.table("tb"))
    assert abs(derived.kept_fraction("tb") - keep) <= keep_rate_tolerance(n)


@_PROPERTY_SETTINGS
@given(keep=st.floats(0.15, 0.95), seed=st.integers(0, 2**31 - 1))
def test_same_seed_is_bitwise_stable(keep, seed):
    import numpy as np

    spec = RemovalSpec("tb", "b", keep, 0.6)
    a = make_incomplete(_DB, [spec], seed=seed)
    b = make_incomplete(_DB, [spec], seed=seed)
    np.testing.assert_array_equal(a.keep_masks["tb"], b.keep_masks["tb"])


@_PROPERTY_SETTINGS
@given(tf=st.floats(-5.0, 5.0))
def test_scenario_rejects_out_of_range_tf(tf):
    spec = RemovalSpec("tb", "b", 0.5, 0.5)
    if 0.0 <= tf <= 1.0:
        ScenarioSpec(name="ok", dataset="synthetic", removals=(spec,),
                     tf_keep_rate=tf)
    else:
        with pytest.raises(ValueError, match="tf_keep_rate"):
            ScenarioSpec(name="bad", dataset="synthetic", removals=(spec,),
                         tf_keep_rate=tf)
