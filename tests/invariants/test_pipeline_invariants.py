"""End-to-end pipeline invariants: removal → training → completion → AQP.

The training-level properties every future scale PR is validated against:

* **cardinality restoration** — the completed database's estimated target
  cardinality is far closer to the truth than the incomplete count, and
  moves monotonically with the keep rate;
* **bitwise reproducibility** — at a fixed seed the completed join is
  bitwise identical (up to row order) for any chunk size, any parallel
  backend and any worker count;
* **golden snapshot** — per-table completed cardinalities and AQP relative
  errors at the harness seed are pinned in a checked-in JSON; silent drift
  of the pipeline's numbers fails the suite.  Regenerate deliberately with
  ``RESTORE_REGEN_GOLDEN=1 pytest tests/invariants/test_pipeline_invariants.py``.
"""

import json
import math
from pathlib import Path

import pytest

from repro.core import IncompletenessJoin, ModelConfig, ReStore, ReStoreConfig
from repro.experiments import joins_bitwise_identical
from repro.incomplete import registry
from repro.metrics import relative_error
from repro.nn import TrainConfig
from repro.query import execute, parse_query

from harness_utils import HARNESS_SEED, regen_golden

GOLDEN_PATH = Path(__file__).parent / "golden" / "pipeline_golden.json"

#: Scenarios pinned by the golden snapshot, with the AQP queries evaluated
#: on each (all touch the scenario's incomplete target table).
GOLDEN_SCENARIOS = {
    "synthetic/biased": ("SELECT COUNT(*) FROM tb;",),
    "housing/H1": (
        "SELECT SUM(price) FROM apartment WHERE room_type = 'Entire home/apt';",
        "SELECT COUNT(*) FROM apartment WHERE property_type = 'House';",
    ),
}


def _train_config() -> ReStoreConfig:
    return ReStoreConfig(
        model=ModelConfig(
            hidden=(24, 24),
            train=TrainConfig(epochs=5, batch_size=128, lr=1e-2, patience=3,
                              seed=HARNESS_SEED),
        ),
        seed=HARNESS_SEED,
    )


def _fit_scenario(name, complete_databases, keep_rate=None):
    entry = registry.get(name)
    db = complete_databases(entry.dataset)
    dataset = registry.make_scenario_dataset(
        name, db=db, keep_rate=keep_rate, seed=HARNESS_SEED
    )
    scenario = entry.build(keep_rate=keep_rate)
    target = scenario.primary_table
    engine = ReStore.from_dataset(dataset, _train_config())
    engine.fit(targets=[target])
    return engine, dataset, target


def _estimated_cardinality(engine, target) -> float:
    best = engine.candidates(target)[0]
    completed = engine.completed_join(best.model)
    projected = engine.project_to_tables(completed, (target,))
    return float(projected.effective_weights().sum())


@pytest.mark.slow
class TestCardinalityRestoration:
    KEEP_RATES = (0.3, 0.5, 0.8)

    @pytest.fixture(scope="class")
    def sweep(self, complete_databases):
        rows = []
        for keep in self.KEEP_RATES:
            engine, dataset, target = _fit_scenario(
                "synthetic/biased", complete_databases, keep_rate=keep
            )
            rows.append({
                "keep": keep,
                "true": len(dataset.complete.table(target)),
                "incomplete": len(dataset.incomplete.table(target)),
                "estimated": _estimated_cardinality(engine, target),
            })
        return rows

    def test_completion_beats_incomplete_cardinality(self, sweep):
        for row in sweep:
            est_error = abs(row["estimated"] - row["true"])
            inc_error = abs(row["incomplete"] - row["true"])
            assert est_error < inc_error, row

    def test_estimate_within_ballpark(self, sweep):
        for row in sweep:
            assert abs(row["estimated"] - row["true"]) / row["true"] < 0.25, row

    def test_estimates_monotone_in_keep_rate(self, sweep):
        estimates = [row["estimated"] for row in sweep]
        for lower, higher in zip(estimates, estimates[1:]):
            assert higher >= lower * 0.98, estimates

    def test_incomplete_counts_monotone_by_construction(self, sweep):
        counts = [row["incomplete"] for row in sweep]
        assert counts == sorted(counts)


@pytest.mark.slow
class TestBitwiseReproducibility:
    """Fixed seed ⇒ identical completed rows for any execution strategy."""

    @pytest.fixture(scope="class")
    def fitted(self, complete_databases):
        engine, _dataset, target = _fit_scenario(
            "synthetic/mar_parent", complete_databases
        )
        return engine.candidates(target)[0].model

    @pytest.fixture(scope="class")
    def reference_join(self, fitted):
        return IncompletenessJoin(fitted, seed=HARNESS_SEED).run()

    @pytest.mark.parametrize("chunk_size", [None, 7, 23, 1000])
    def test_chunk_size_invariant(self, fitted, reference_join, chunk_size):
        join = IncompletenessJoin(
            fitted, seed=HARNESS_SEED, chunk_size=chunk_size
        ).run()
        assert joins_bitwise_identical(reference_join, join)

    @pytest.mark.parametrize("backend,n_workers", [
        ("serial", 1), ("thread", 2), ("thread", 4), ("process", 2),
    ])
    def test_backend_invariant(self, fitted, reference_join, backend, n_workers):
        join = IncompletenessJoin(
            fitted, seed=HARNESS_SEED, chunk_size=11,
            n_workers=n_workers, parallel_backend=backend,
        ).run()
        assert joins_bitwise_identical(reference_join, join)

    def test_engine_refit_reproduces_join(self, complete_databases,
                                          fitted, reference_join):
        """A fresh engine (fresh training) at the same seed lands on the
        same completed rows — the whole pipeline is seed-deterministic."""
        engine, _dataset, target = _fit_scenario(
            "synthetic/mar_parent", complete_databases
        )
        again = engine.candidates(target)[0].model
        join = IncompletenessJoin(again, seed=HARNESS_SEED).run()
        assert joins_bitwise_identical(reference_join, join)


def _snapshot_scenario(name, queries, complete_databases):
    engine, dataset, target = _fit_scenario(name, complete_databases)
    best = engine.candidates(target)[0]
    completed = engine.completed_join(best.model)
    aqp = {}
    for sql in queries:
        query = parse_query(sql)
        truth = execute(dataset.complete, query)
        on_incomplete = execute(dataset.incomplete, query)
        answer = engine.answer(query, model=best.model)
        aqp[sql] = {
            "incomplete": relative_error(on_incomplete, truth),
            "completed": relative_error(answer.result, truth),
        }
    return {
        "target": target,
        "completed_rows": int(completed.num_rows),
        "num_synthesized": {k: int(v) for k, v in
                            sorted(completed.num_synthesized.items())},
        "true_cardinality": len(dataset.complete.table(target)),
        "incomplete_cardinality": len(dataset.incomplete.table(target)),
        "estimated_cardinality": _estimated_cardinality(engine, target),
        "aqp": aqp,
    }


def _assert_close(actual, golden, where, rel=0.02, abs_tol=2.0):
    if isinstance(golden, dict):
        assert set(actual) == set(golden), where
        for key in golden:
            _assert_close(actual[key], golden[key], f"{where}.{key}",
                          rel=rel, abs_tol=abs_tol)
    elif isinstance(golden, (int, float)):
        assert math.isclose(actual, golden, rel_tol=rel, abs_tol=abs_tol), (
            f"{where}: {actual} drifted from golden {golden}"
        )
    else:
        assert actual == golden, where


@pytest.mark.slow
class TestGoldenSnapshot:
    """Checked-in pipeline numbers at the harness seed guard silent drift."""

    @pytest.fixture(scope="class")
    def snapshots(self, complete_databases):
        return {
            name: _snapshot_scenario(name, queries, complete_databases)
            for name, queries in GOLDEN_SCENARIOS.items()
        }

    def test_golden_snapshot(self, snapshots):
        if regen_golden():
            GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
            GOLDEN_PATH.write_text(json.dumps({
                "_meta": {
                    "seed": HARNESS_SEED,
                    "regenerate": "RESTORE_REGEN_GOLDEN=1 pytest "
                                  "tests/invariants/test_pipeline_invariants.py",
                },
                **snapshots,
            }, indent=2, sort_keys=True) + "\n")
            pytest.skip(f"regenerated {GOLDEN_PATH}")
        assert GOLDEN_PATH.exists(), (
            "golden snapshot missing; regenerate with RESTORE_REGEN_GOLDEN=1"
        )
        golden = json.loads(GOLDEN_PATH.read_text())
        golden.pop("_meta", None)
        assert set(snapshots) == set(golden)
        for name, snap in snapshots.items():
            # AQP relative errors get an absolute band (they are already
            # ratios); every other number must stay within 2%.
            golden_rest = {k: v for k, v in golden[name].items() if k != "aqp"}
            golden_aqp = golden[name]["aqp"]
            actual_rest = {k: v for k, v in snap.items() if k != "aqp"}
            actual_aqp = snap["aqp"]
            _assert_close(actual_rest, golden_rest, name)
            assert set(actual_aqp) == set(golden_aqp), name
            for sql, errors in golden_aqp.items():
                for side in ("incomplete", "completed"):
                    assert abs(actual_aqp[sql][side] - errors[side]) <= 0.08, (
                        f"{name} {side} error on {sql!r}: "
                        f"{actual_aqp[sql][side]:.4f} vs golden {errors[side]:.4f}"
                    )

    def test_completion_improves_the_golden_queries(self, snapshots):
        """Independent of pinned values: completion must not make the AQP
        errors of the golden workload worse."""
        for name, snap in snapshots.items():
            for sql, errors in snap["aqp"].items():
                assert errors["completed"] <= errors["incomplete"] + 0.05, (
                    name, sql, errors
                )
