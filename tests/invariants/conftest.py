"""Fixtures of the invariant harness.

The harness asserts pipeline-wide properties for **every** scenario in
:mod:`repro.incomplete.registry`, so the central fixture is
``scenario_name`` — parametrized over the full matrix — plus session-scoped
caches for the (expensive) complete databases and the (cheap) instantiated
incomplete datasets.  Scales are small: removal-level invariants run the
whole matrix in seconds; training-level invariants pick single scenarios
and are marked ``slow``.
"""

import pytest

from repro.incomplete import IncompleteDataset, registry
from repro.relational import Database

from harness_utils import DB_SCALE, HARNESS_SEED


@pytest.fixture(scope="session")
def complete_databases():
    """Session cache: dataset family -> complete ground-truth database."""
    cache = {}

    def get(dataset: str) -> Database:
        if dataset not in cache:
            from repro.workloads import base_database

            cache[dataset] = base_database(
                dataset, seed=HARNESS_SEED, scale=DB_SCALE[dataset]
            )
        return cache[dataset]

    return get


@pytest.fixture(params=sorted(registry.names()))
def scenario_name(request) -> str:
    """Every scenario of the registry matrix, by name."""
    return request.param


@pytest.fixture(scope="session")
def scenario_datasets(complete_databases):
    """Session cache: scenario name -> instantiated incomplete dataset."""
    cache = {}

    def get(name: str) -> IncompleteDataset:
        if name not in cache:
            entry = registry.get(name)
            cache[name] = registry.make_scenario_dataset(
                name, db=complete_databases(entry.dataset), seed=HARNESS_SEED
            )
        return cache[name]

    return get


@pytest.fixture
def scenario_dataset(scenario_name, scenario_datasets) -> IncompleteDataset:
    """The current scenario instantiated at the harness seed."""
    return scenario_datasets(scenario_name)
