"""Seeded-generator property tests (no dependency beyond numpy).

A counter-based RNG drives randomized scenario construction — random
mechanism, keep rate, correlation and seed — and every draw must satisfy
the removal invariants.  This is the dependency-free core of the
property-based harness; ``test_property_hypothesis.py`` runs the same
properties under Hypothesis' shrinking when the library is available.
"""

import numpy as np
import pytest

from repro.datasets import HousingConfig, SyntheticConfig, generate_housing, generate_synthetic
from repro.incomplete import (
    MCAR,
    MAR,
    FKCascade,
    MARParent,
    MNARSelfMasking,
    RareValue,
    RemovalSpec,
    ScenarioSpec,
    TemporalRecent,
    ValueThreshold,
    derive_selection_scenario,
    make_incomplete,
)

from harness_utils import (
    cascade_can_shrink,
    dangling_parent_tables,
    keep_rate_tolerance,
)

NUM_DRAWS = 25


@pytest.fixture(scope="module")
def synthetic_db():
    return generate_synthetic(SyntheticConfig(num_parents=250, seed=13))


@pytest.fixture(scope="module")
def housing_db():
    return generate_housing(HousingConfig(
        num_neighborhoods=20, num_landlords=60,
        apartments_per_neighborhood=8.0, seed=13,
    ))


def _random_synthetic_mechanism(rng):
    """One random mechanism applicable to the synthetic tb table."""
    corr = float(rng.uniform(0.0, 1.0))
    choices = (
        lambda: None,                                   # paper protocol
        lambda: MCAR(),
        lambda: MARParent(parent_table="ta", attribute="a", correlation=corr),
        lambda: MNARSelfMasking(attribute="b", sharpness=corr),
        lambda: FKCascade(parent_table="ta"),
        lambda: RareValue(attribute="b", correlation=corr),
    )
    return choices[rng.integers(len(choices))]()


def _check_invariants(dataset, spec):
    n = len(dataset.complete.table(spec.table))
    kept = dataset.kept_fraction(spec.table)
    tolerance = keep_rate_tolerance(n)
    if cascade_can_shrink(dataset, spec.table):
        # Another removed table cascades into this one: its own keep rate
        # is an upper bound, not an equality.
        assert kept <= spec.keep_rate + tolerance
    else:
        assert abs(kept - spec.keep_rate) <= tolerance
    for parent in dangling_parent_tables(dataset.incomplete):
        assert not dataset.annotation.is_complete(parent)
    mask = dataset.keep_masks[spec.table]
    assert int(mask.sum()) == len(dataset.incomplete.table(spec.table))


class TestRandomizedSpecs:
    def test_random_synthetic_removals_hold_invariants(self, synthetic_db):
        rng = np.random.default_rng(20260730)
        for draw in range(NUM_DRAWS):
            keep = float(rng.uniform(0.15, 0.95))
            corr = float(rng.uniform(0.0, 1.0))
            mechanism = _random_synthetic_mechanism(rng)
            spec = (
                RemovalSpec("tb", "b", keep, corr)
                if mechanism is None
                else RemovalSpec("tb", keep_rate=keep, mechanism=mechanism)
            )
            dataset = make_incomplete(
                synthetic_db, [spec],
                tf_keep_rate=float(rng.uniform(0.0, 1.0)),
                seed=int(rng.integers(1 << 31)),
            )
            _check_invariants(dataset, spec)

    def test_random_housing_scenarios_hold_invariants(self, housing_db):
        rng = np.random.default_rng(4201)
        apartment_mechs = (
            lambda corr: MAR(attribute="room_type", correlation=corr),
            lambda corr: MARParent(parent_table="neighborhood",
                                   attribute="pop_density", correlation=corr),
            lambda corr: MNARSelfMasking(attribute="price", sharpness=corr),
            lambda corr: ValueThreshold(attribute="price",
                                        quantile=float(rng.uniform(0.4, 0.9))),
            lambda corr: FKCascade(parent_table="neighborhood"),
        )
        for draw in range(NUM_DRAWS):
            keep = float(rng.uniform(0.2, 0.9))
            corr = float(rng.uniform(0.0, 1.0))
            mech = apartment_mechs[rng.integers(len(apartment_mechs))](corr)
            removals = [RemovalSpec("apartment", keep_rate=keep, mechanism=mech)]
            if rng.random() < 0.5:
                removals.append(RemovalSpec(
                    "landlord", keep_rate=float(rng.uniform(0.4, 0.9)),
                    mechanism=TemporalRecent(time_attribute="landlord_since",
                                             softness=float(rng.uniform(0, 1))),
                ))
            scenario = ScenarioSpec(
                name=f"random-{draw}", dataset="housing",
                removals=tuple(removals),
                tf_keep_rate=float(rng.uniform(0.0, 1.0)),
                dangling_parents=() if rng.random() < 0.5 else None,
            )
            dataset = scenario.instantiate(
                housing_db, seed=int(rng.integers(1 << 31))
            )
            for spec in dataset.specs:
                _check_invariants(dataset, spec)

    def test_random_scenarios_survive_derivation(self, synthetic_db):
        """Metamorphic: any random first-level removal admits re-removal."""
        rng = np.random.default_rng(77)
        for draw in range(NUM_DRAWS // 2):
            keep = float(rng.uniform(0.35, 0.9))
            mechanism = _random_synthetic_mechanism(rng)
            spec = (
                RemovalSpec("tb", "b", keep, 0.5)
                if mechanism is None
                else RemovalSpec("tb", keep_rate=keep, mechanism=mechanism)
            )
            dataset = make_incomplete(
                synthetic_db, [spec], seed=int(rng.integers(1 << 31))
            )
            derived = derive_selection_scenario(
                dataset, seed=int(rng.integers(1 << 31))
            )
            assert derived.complete is dataset.incomplete
            _check_invariants(derived, spec)
