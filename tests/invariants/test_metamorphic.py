"""Metamorphic invariants of the §5 derived selection scenarios.

``derive_selection_scenario`` re-applies a dataset's removal
characteristics to the already-incomplete data, treating it as ground
truth.  The properties that make the trick sound are metamorphic — they
relate the outputs of repeated applications rather than pinning point
values:

* re-application succeeds for **every** registry scenario (the spec
  translation covers every mechanism, not just the paper protocol);
* the derived dataset's "complete" side *is* the first-level incomplete
  database (no copy, no mutation);
* the same keep rates are hit again on the smaller data;
* derivation composes: deriving from a derived dataset applies the same
  characteristics once more (fixpoint-compatible re-application);
* the second-level removal is decorrelated from the first (different rows
  go) yet deterministic in the seed.
"""

import numpy as np
import pytest

from repro.incomplete import (
    RemovalSpec,
    derive_selection_scenario,
    make_incomplete,
    registry,
)

from harness_utils import cascade_can_shrink, keep_rate_tolerance


def _assert_keep_rates(dataset, label):
    for spec in dataset.specs:
        n = len(dataset.complete.table(spec.table))
        kept = dataset.kept_fraction(spec.table)
        tolerance = keep_rate_tolerance(n)
        if cascade_can_shrink(dataset, spec.table):
            assert kept <= spec.keep_rate + tolerance, label
        else:
            assert abs(kept - spec.keep_rate) <= tolerance, (
                f"{label}: {spec.table} kept {kept:.3f}, "
                f"spec {spec.keep_rate:.3f}"
            )


def _derivable(dataset) -> bool:
    """Scenarios whose spec'd tables keep >1 row at the second level."""
    return all(
        len(dataset.incomplete.table(spec.table)) * (1.0 - spec.keep_rate) >= 1
        for spec in dataset.specs
    )


class TestDeriveEveryScenario:
    def test_derivation_succeeds(self, scenario_name, scenario_dataset):
        derived = derive_selection_scenario(scenario_dataset, seed=3)
        assert derived.complete is scenario_dataset.incomplete
        assert derived.specs == scenario_dataset.specs

    def test_keep_rates_hit_again(self, scenario_name, scenario_dataset):
        derived = derive_selection_scenario(scenario_dataset, seed=3)
        _assert_keep_rates(derived, f"{scenario_name} (second level)")

    def test_derivation_composes(self, scenario_name, scenario_dataset):
        """Fixpoint-compatible: deriving from a derived dataset applies the
        identical characteristics a third time."""
        second = derive_selection_scenario(scenario_dataset, seed=3)
        if not _derivable(second):
            pytest.skip("second level too small for a third removal")
        third = derive_selection_scenario(second, seed=4)
        assert third.complete is second.incomplete
        assert third.specs == scenario_dataset.specs
        _assert_keep_rates(third, f"{scenario_name} (third level)")

    def test_decorrelated_from_first_level(self, scenario_name,
                                           scenario_dataset):
        """The re-removal must not delete the same logical rows again (it is
        reseeded); otherwise the derived scenario would systematically see
        the same survivors.  Only meaningful for mechanisms with a dominant
        random component: near-deterministic ones (recency, threshold) are
        *supposed* to pick the same rows at any seed."""
        deterministic = {"temporal_recent", "threshold"}
        mechanisms = set(registry.get(scenario_name).mechanisms)
        if mechanisms <= deterministic:
            pytest.skip("near-deterministic mechanism: same rows by design")
        derived_a = derive_selection_scenario(scenario_dataset, seed=3)
        derived_b = derive_selection_scenario(scenario_dataset, seed=9)
        different = False
        for spec in scenario_dataset.specs:
            if spec.mechanism_name in deterministic:
                continue
            mask_a = derived_a.keep_masks[spec.table]
            mask_b = derived_b.keep_masks[spec.table]
            if not np.array_equal(mask_a, mask_b):
                different = True
        assert different

    def test_deterministic_in_seed(self, scenario_dataset):
        derived_a = derive_selection_scenario(scenario_dataset, seed=3)
        derived_b = derive_selection_scenario(scenario_dataset, seed=3)
        for spec in scenario_dataset.specs:
            np.testing.assert_array_equal(
                derived_a.keep_masks[spec.table],
                derived_b.keep_masks[spec.table],
            )


class TestDeriveValidation:
    """The satellite fix: spec translation validates against the incomplete
    data and fails with a clear error instead of deep inside numpy."""

    def test_missing_attribute_raises_clearly(self):
        from repro.datasets import SyntheticConfig, generate_synthetic

        db = generate_synthetic(SyntheticConfig(num_parents=150, seed=0))
        dataset = make_incomplete(
            db, [RemovalSpec("tb", "b", 0.5, 0.4)], seed=1
        )
        # Simulate a pipeline that dropped the biased attribute from the
        # incomplete table (e.g. a projection pushed below the removal).
        tb = dataset.incomplete.table("tb")
        stripped = dataset.incomplete.replace_table(
            tb.project([c for c in tb.column_names if c != "b"])
        )
        broken = type(dataset)(
            complete=dataset.complete,
            incomplete=stripped,
            annotation=dataset.annotation,
            keep_masks=dataset.keep_masks,
            specs=dataset.specs,
        )
        with pytest.raises(ValueError, match="cannot re-apply.*'b'"):
            derive_selection_scenario(broken, seed=2)

    def test_mechanism_validation_also_applies(self, scenario_datasets):
        """Mechanism-backed specs revalidate too (e.g. FK-cascade needs its
        foreign key in the incomplete schema — present here, so it works)."""
        dataset = scenario_datasets("synthetic/fk_cascade")
        derived = derive_selection_scenario(dataset, seed=5)
        assert derived.specs[0].mechanism is dataset.specs[0].mechanism

    def test_registry_scenarios_all_translate(self, scenario_dataset):
        for spec in scenario_dataset.specs:
            assert spec.translated_for(scenario_dataset.incomplete) is spec
