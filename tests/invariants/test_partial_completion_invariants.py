"""Invariants of query-driven partial completion (pushdown + budgets).

Pinned properties, exercised over randomized predicates and budgets at the
harness seed:

* **pushdown identity** — for any pushable predicate, the pushed answer is
  bitwise-identical to full materialization at the same seed and chunk
  grid, and the pushed join never contains a row failing the predicate;
* **backend independence** — plan-aware chunk walks return bitwise-identical
  joins on the serial and thread backends;
* **cache soundness** — chunks reused across overlapping predicates
  (subset fingerprints) reproduce the cold-run join exactly;
* **budget schedules** — for any (initial, growth, cap): cumulative chunk
  counts are strictly increasing and end exactly at the (capped) grid.
"""

import numpy as np
import pytest

from repro.core import ModelConfig, ReStore, ReStoreConfig, SamplingBudget
from repro.experiments import joins_bitwise_identical
from repro.incomplete import registry
from repro.nn import TrainConfig
from repro.query import parse_query, predicate_mask

from harness_utils import HARNESS_SEED

#: Predicates on the root (complete) evidence table of the scenario's
#: completion path — each selects a different fraction of root rows.
ROOT_PREDICATES = [
    "a = 'v1'",
    "a != 'v2'",
    "a IN ('v1', 'v3')",
]


def _config(**overrides) -> ReStoreConfig:
    base = dict(
        model=ModelConfig(
            hidden=(24, 24),
            train=TrainConfig(epochs=5, batch_size=128, lr=1e-2, patience=3,
                              seed=HARNESS_SEED),
        ),
        seed=HARNESS_SEED,
        chunk_size=16,
    )
    base.update(overrides)
    return ReStoreConfig(**base)


@pytest.fixture(scope="module")
def fitted(complete_databases):
    entry = registry.get("synthetic/biased")
    db = complete_databases(entry.dataset)
    dataset = registry.make_scenario_dataset(
        "synthetic/biased", db=db, seed=HARNESS_SEED
    )
    engine = ReStore.from_dataset(dataset, _config())
    engine.fit(targets=["tb"])
    return dataset, engine


def _sql(predicate: str) -> str:
    return f"SELECT COUNT(*) FROM ta NATURAL JOIN tb WHERE {predicate};"


@pytest.mark.parametrize("predicate", ROOT_PREDICATES)
def test_pushdown_answers_bitwise_identical(fitted, predicate):
    _, engine = fitted
    query = parse_query(_sql(predicate))
    engine.clear_cache()
    full = engine.answer(query)
    engine.clear_cache()
    pushed = engine.answer(query, pushdown=True)
    assert pushed.pushdown is not None
    assert pushed.result.scalar == full.result.scalar
    joined = pushed.completed.result
    for f in query.filters:
        assert predicate_mask(joined.resolve(f.column), f).all()


def test_pushed_walk_backend_independent(fitted):
    dataset, _ = fitted
    query = parse_query(_sql(ROOT_PREDICATES[0]))
    joins = []
    for backend in ("serial", "thread"):
        engine = ReStore.from_dataset(
            dataset,
            _config(n_workers=2 if backend == "thread" else 1,
                    parallel_backend=backend),
        )
        engine.fit(targets=["tb"])
        joins.append(engine.answer(query, pushdown=True).completed)
    assert joins_bitwise_identical(*joins)


def test_subset_reuse_reproduces_cold_run(fitted):
    dataset, engine = fitted
    loose = parse_query(_sql("a != 'v2'"))
    strict = parse_query(_sql("a != 'v2' AND b = 'v1'"))
    engine.clear_cache()
    engine.answer(loose, pushdown=True)
    engine.join_cache.invalidate()
    before = engine.partial_cache_stats.subset_hits
    warm = engine.answer(strict, pushdown=True)
    assert engine.partial_cache_stats.subset_hits > before

    cold_engine = ReStore.from_dataset(dataset, _config())
    cold_engine.fit(targets=["tb"])
    cold = cold_engine.answer(strict, pushdown=True)
    assert joins_bitwise_identical(warm.completed, cold.completed)


def test_progressive_final_is_exact(fitted):
    _, engine = fitted
    query = parse_query(_sql(ROOT_PREDICATES[0]))
    engine.clear_cache()
    exact = engine.answer(query, pushdown=True)
    engine.clear_cache()
    refinements = list(engine.answer_progressive(query))
    assert refinements[-1].final
    assert refinements[-1].result.scalar == exact.result.scalar


def test_budget_schedules_cover_grid_exactly():
    rng = np.random.default_rng(HARNESS_SEED)
    for _ in range(200):
        initial = int(rng.integers(1, 8))
        growth = float(rng.uniform(1.0, 4.0))
        cap = None if rng.random() < 0.5 else int(rng.integers(1, 40))
        total = int(rng.integers(0, 64))
        budget = SamplingBudget(initial_chunks=initial, growth=growth,
                                max_chunks=cap)
        schedule = budget.schedule(total)
        expected_end = min(total, cap) if cap is not None else total
        if expected_end == 0:
            assert schedule == []
            continue
        assert schedule[-1] == expected_end
        assert schedule[0] <= max(initial, 1)
        assert all(b > a for a, b in zip(schedule, schedule[1:]))
