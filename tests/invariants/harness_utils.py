"""Shared helpers of the invariant harness (importable from every module)."""

import os

import numpy as np

from repro.relational import Database

# One fixed seed for everything derived from the registry: golden snapshots
# and determinism checks depend on it.
HARNESS_SEED = 7

#: Complete-database scale per dataset family (small, but large enough that
#: keep rates resolve to better than the harness tolerance).
DB_SCALE = {"synthetic": 0.4, "housing": 0.1, "movies": 0.1, "scale": 0.003}


def keep_rate_tolerance(num_rows: int) -> float:
    """Removal deletes ``round((1 - keep) * n)`` rows exactly; the kept
    fraction can therefore differ from the spec by at most ~1/n (plus float
    slack)."""
    return 2.0 / max(num_rows, 1) + 1e-9


def dangling_parent_tables(db: Database):
    """Parent tables that dangling FK references point into."""
    parents = set()
    for problem in db.validate_references():
        arrow = problem.split("-> ", 1)[1]
        parents.add(arrow.split(".", 1)[0])
    return parents


def regen_golden() -> bool:
    """Whether this run should rewrite the golden snapshot files."""
    return os.environ.get("RESTORE_REGEN_GOLDEN", "") == "1"


def cascade_can_shrink(dataset, table: str) -> bool:
    """Whether the dangling-link cascade may remove extra rows of ``table``.

    A spec'd table only misses its exact keep rate when it is the FK child
    of *another* removed table and that parent participates in the cascade
    — then children of removed parents are dropped on top of the spec's own
    removal.
    """
    if not dataset.drop_dangling_links:
        return False
    removed = {spec.table for spec in dataset.specs}
    cascading = (
        removed if dataset.dangling_parents is None
        else removed & set(dataset.dangling_parents)
    )
    return any(
        fk.child_table == table and fk.parent_table in (cascading - {table})
        for fk in dataset.incomplete.foreign_keys
    )


def assert_tables_equal(a: Database, b: Database) -> None:
    """Bitwise table equality (column order, values) across two databases."""
    assert a.table_names() == b.table_names()
    for name in a.table_names():
        ta, tb = a.table(name), b.table(name)
        assert ta.column_names == tb.column_names, name
        for col in ta.column_names:
            np.testing.assert_array_equal(ta[col], tb[col], err_msg=f"{name}.{col}")
