"""Structural invariants of every registry scenario's removal.

These run the **entire** scenario matrix (every dataset × mechanism) at a
small scale, asserting the properties any removal protocol must satisfy
regardless of its mechanism:

* the spec'd keep rate is hit exactly (up to the 1-row rounding bound);
* referential integrity only degrades in the sanctioned way — dangling
  foreign keys may point into *removed incomplete* tables (they are the
  evidence of missingness), never into complete ones;
* the complete ground-truth database is never mutated;
* keep masks, annotations and table sizes stay mutually consistent;
* fixed seeds reproduce the removal bitwise; different seeds vary it.
"""

import numpy as np
import pytest

from repro.incomplete import registry
from repro.relational.tuple_factors import TF_UNKNOWN

from harness_utils import (
    DB_SCALE,
    HARNESS_SEED,
    assert_tables_equal,
    cascade_can_shrink,
    dangling_parent_tables,
    keep_rate_tolerance,
)


class TestKeepRate:
    def test_spec_tables_hit_keep_rate(self, scenario_name, scenario_dataset):
        for spec in scenario_dataset.specs:
            n = len(scenario_dataset.complete.table(spec.table))
            kept = scenario_dataset.kept_fraction(spec.table)
            tolerance = keep_rate_tolerance(n)
            if cascade_can_shrink(scenario_dataset, spec.table):
                assert kept <= spec.keep_rate + tolerance, scenario_name
            else:
                assert abs(kept - spec.keep_rate) <= tolerance, (
                    f"{scenario_name}: {spec.table} kept {kept:.3f}, "
                    f"spec {spec.keep_rate:.3f}"
                )

    def test_masks_match_table_sizes(self, scenario_dataset):
        for table, mask in scenario_dataset.keep_masks.items():
            assert len(mask) == len(scenario_dataset.complete.table(table))
            assert int(mask.sum()) == len(scenario_dataset.incomplete.table(table))

    def test_some_rows_removed_and_some_kept(self, scenario_dataset):
        for spec in scenario_dataset.specs:
            incomplete = scenario_dataset.incomplete.table(spec.table)
            complete = scenario_dataset.complete.table(spec.table)
            assert 0 < len(incomplete) < len(complete)


class TestReferentialIntegrity:
    def test_dangling_refs_only_into_removed_tables(self, scenario_name,
                                                    scenario_dataset):
        """Dangling FKs are allowed only as missingness evidence."""
        annotation = scenario_dataset.annotation
        for parent in dangling_parent_tables(scenario_dataset.incomplete):
            assert not annotation.is_complete(parent), (
                f"{scenario_name}: dangling references into complete "
                f"table {parent!r}"
            )

    def test_full_cascade_leaves_no_dangling(self, scenario_name,
                                             scenario_dataset):
        entry = registry.get(scenario_name)
        scenario = entry.build()
        if not scenario.drop_dangling_links or scenario.dangling_parents is not None:
            pytest.skip("scenario intentionally keeps dangling references")
        assert scenario_dataset.incomplete.validate_references() == []

    def test_kept_rows_are_a_subset_of_complete(self, scenario_dataset):
        """Removal only deletes rows — it never invents or edits them."""
        for spec in scenario_dataset.specs:
            mask = scenario_dataset.keep_masks[spec.table]
            complete = scenario_dataset.complete.table(spec.table)
            incomplete = scenario_dataset.incomplete.table(spec.table)
            for col in complete.column_names:
                np.testing.assert_array_equal(
                    incomplete[col], complete[col][mask],
                    err_msg=f"{spec.table}.{col}",
                )


class TestAnnotation:
    def test_annotation_covers_every_table(self, scenario_dataset):
        scenario_dataset.annotation.check_covers(scenario_dataset.incomplete)

    def test_spec_tables_marked_incomplete(self, scenario_dataset):
        for spec in scenario_dataset.specs:
            assert not scenario_dataset.annotation.is_complete(spec.table)

    def test_untouched_tables_marked_complete(self, scenario_dataset):
        touched = set(scenario_dataset.keep_masks)
        for table in scenario_dataset.incomplete.table_names():
            if table not in touched:
                assert scenario_dataset.annotation.is_complete(table)

    def test_known_tuple_factors_are_true_counts(self, scenario_dataset):
        """Where a TF is annotated as known it must be the *true* count."""
        from repro.relational.tuple_factors import observed_tuple_factors

        db = scenario_dataset.complete
        for fk in scenario_dataset.incomplete.foreign_keys:
            key = str(fk)
            annotated = scenario_dataset.annotation.known_tuple_factors.get(key)
            if annotated is None:
                continue
            true_tfs = observed_tuple_factors(db, fk)
            parent_keep = scenario_dataset.keep_masks.get(fk.parent_table)
            if parent_keep is not None:
                true_tfs = true_tfs[parent_keep]
            known = annotated != TF_UNKNOWN
            np.testing.assert_array_equal(annotated[known], true_tfs[known])


class TestDeterminism:
    def test_complete_database_untouched(self, scenario_name,
                                         complete_databases,
                                         scenario_dataset):
        entry = registry.get(scenario_name)
        fresh = registry.scenario_database(
            scenario_name, seed=HARNESS_SEED, scale=DB_SCALE[entry.dataset],
        )
        assert_tables_equal(scenario_dataset.complete, fresh)

    def test_same_seed_reproduces_bitwise(self, scenario_name,
                                          complete_databases,
                                          scenario_dataset):
        entry = registry.get(scenario_name)
        again = registry.make_scenario_dataset(
            scenario_name, db=complete_databases(entry.dataset),
            seed=HARNESS_SEED,
        )
        assert_tables_equal(scenario_dataset.incomplete, again.incomplete)
        for table, mask in scenario_dataset.keep_masks.items():
            np.testing.assert_array_equal(mask, again.keep_masks[table])

    def test_different_seed_changes_the_removal(self, scenario_name,
                                                complete_databases,
                                                scenario_dataset):
        entry = registry.get(scenario_name)
        other = registry.make_scenario_dataset(
            scenario_name, db=complete_databases(entry.dataset),
            seed=HARNESS_SEED + 1,
        )
        different = any(
            not np.array_equal(mask, other.keep_masks[table])
            for table, mask in scenario_dataset.keep_masks.items()
        )
        assert different, f"{scenario_name}: removal ignores the seed"


class TestMatrixShape:
    """The acceptance criteria of the scenario matrix itself."""

    def test_at_least_eight_mechanisms(self):
        assert len(registry.mechanism_names()) >= 8

    def test_matrix_spans_at_least_two_datasets(self):
        assert len(registry.datasets()) >= 2

    def test_every_scenario_builds_and_validates(self, complete_databases):
        for name in registry.names():
            entry = registry.get(name)
            scenario = entry.build()
            scenario.validate(complete_databases(entry.dataset))

    def test_scenarios_reparameterize(self):
        for name in registry.names():
            scenario = registry.build_scenario(name)
            tweaked = scenario.with_rates(keep_rate=0.35)
            assert tweaked.removals[0].keep_rate == 0.35
            assert tweaked.removals[1:] == scenario.removals[1:]

    def test_correlation_sweep_reaches_every_mechanism(self):
        """with_rates(removal_correlation=...) must re-parameterize the
        primary spec whatever its mechanism — never a silent no-op."""
        for name in registry.names():
            scenario = registry.build_scenario(name)
            primary = scenario.removals[0]
            swept = scenario.with_rates(removal_correlation=0.9).removals[0]
            if primary.mechanism is None:
                assert swept.removal_correlation == 0.9, name
            else:
                assert swept.mechanism == primary.mechanism.with_strength(0.9), name
