"""Invariants of incremental completion (mutations → recompletion).

Pinned properties, exercised over randomized cascade-aware mutation
sequences at the harness seed:

* **recompletion identity** — ``recomplete(delta)`` is bitwise-identical
  (up to row order) to from-scratch completion of the mutated database at
  the same seed, for every execution backend and several chunk sizes, on
  all three dataset families (housing/movies nightly-gated via ``slow``);
* **minimal, sound invalidation** — an update-only root delta re-walks
  *exactly* the chunks covering the updated rows; every untouched chunk is
  served from the partial cache (hit counters asserted, not just
  provenance), and the warm result still matches a cold twin.

Twin engines are built by loading the same saved artifact twice — engines
hold locks and cannot be pickled, and an artifact round-trip is exactly
the "same fitted state, fresh caches" starting point the identity claim
quantifies over.
"""

import numpy as np
import pytest

from repro.core import ModelConfig, ReStore, ReStoreConfig
from repro.experiments import joins_bitwise_identical
from repro.incomplete import registry
from repro.incremental import affected_tasks
from repro.nn import TrainConfig
from repro.relational import ColumnKind, Database

from harness_utils import HARNESS_SEED

#: Mutation batches per randomized sequence.  Each batch mixes inserts,
#: updates and deletes over every mutable table, so sequences cover grid
#: changes, closure-table mutations and cascade deletes.
SEQUENCE_STEPS = 3


def _config() -> ReStoreConfig:
    return ReStoreConfig(
        model=ModelConfig(
            hidden=(24, 24),
            train=TrainConfig(epochs=5, batch_size=128, lr=1e-2, patience=3,
                              seed=HARNESS_SEED),
        ),
        seed=HARNESS_SEED,
        chunk_size=16,
    )


def _artifact_for(scenario: str, complete_databases, tmp_path_factory):
    entry = registry.get(scenario)
    dataset = registry.make_scenario_dataset(
        scenario, db=complete_databases(entry.dataset), seed=HARNESS_SEED
    )
    engine = ReStore.from_dataset(dataset, _config()).fit()
    path = tmp_path_factory.mktemp("incremental") / scenario.replace("/", "_")
    engine.save_artifact(path, scenario=scenario)
    return path


@pytest.fixture(scope="module")
def synthetic_artifact(complete_databases, tmp_path_factory):
    return _artifact_for("synthetic/biased", complete_databases,
                         tmp_path_factory)


# ----------------------------------------------------------------------
# Randomized cascade-aware mutation batches
# ----------------------------------------------------------------------


def _donor_row(table, rng) -> dict:
    pos = int(rng.integers(table.num_rows))
    return {c: table[c][pos] for c in table.column_names}


def random_batch(db: Database, rng, max_ops: int = 4) -> dict:
    """A seeded insert/update/delete batch over every mutable table.

    Inserts clone a random donor row under a fresh primary key (so FK
    references stay plausible), updates overwrite one non-key column of a
    random row with a donor value, deletes pick random primary keys —
    cascades through FK children are the mutation API's job.
    """
    tables = [
        n for n in db.table_names()
        if db.table(n).primary_key is not None and db.table(n).num_rows > 3
    ]
    inserts: dict = {}
    updates: dict = {}
    deletes: dict = {}
    for _ in range(int(rng.integers(1, max_ops + 1))):
        name = tables[int(rng.integers(len(tables)))]
        table = db.table(name)
        pk = table.primary_key
        op = ("insert", "update", "delete")[int(rng.integers(3))]
        if op == "insert":
            row = _donor_row(table, rng)
            row[pk] = int(table[pk].max()) + 1 + len(inserts.get(name, []))
            inserts.setdefault(name, []).append(row)
        elif op == "update":
            columns = [
                c for c in table.column_names
                if c != pk and table.meta(c).kind != ColumnKind.KEY
            ]
            if not columns:
                continue
            column = columns[int(rng.integers(len(columns)))]
            target = int(table[pk][int(rng.integers(table.num_rows))])
            updates.setdefault(name, []).append(
                {pk: target, column: _donor_row(table, rng)[column]}
            )
        else:
            victim = int(table[pk][int(rng.integers(table.num_rows))])
            deletes.setdefault(name, set()).add(victim)
    batch = {}
    if inserts:
        batch["inserts"] = inserts
    if updates:
        batch["updates"] = updates
    if deletes:
        batch["deletes"] = {t: sorted(ks) for t, ks in deletes.items()}
    if not batch:
        return random_batch(db, rng, max_ops)
    return batch


def _run_sequence(artifact, seed: int, overrides=None, steps=SEQUENCE_STEPS):
    """Mutate twin engines in lockstep; assert warm == cold at every step."""
    incremental = ReStore.load(artifact, config_overrides=overrides)
    scratch = ReStore.load(artifact, config_overrides=overrides)
    rng = np.random.default_rng(seed)
    incremental.recomplete()  # warm the caches so reuse is actually at stake
    for _ in range(steps):
        batch = random_batch(incremental.db, rng)
        delta = incremental.apply_mutations(**batch)
        scratch.apply_mutations(**batch)
        scratch.clear_cache()
        warm = incremental.recomplete(delta)
        cold = scratch.recomplete()
        assert cold.recompletion["chunks_walked"] == \
            cold.recompletion["chunks_total"]
        assert joins_bitwise_identical(warm, cold), (
            f"recomplete diverged from from-scratch for batch {batch!r}"
        )


# ----------------------------------------------------------------------
# Recompletion identity
# ----------------------------------------------------------------------


@pytest.mark.parametrize("chunk_size", [7, 16])
def test_recomplete_matches_from_scratch_across_chunk_sizes(
    synthetic_artifact, chunk_size
):
    _run_sequence(synthetic_artifact, HARNESS_SEED,
                  overrides={"chunk_size": chunk_size})


@pytest.mark.parametrize(
    "backend,workers",
    [
        ("serial", 1),
        ("thread", 2),
        pytest.param("process", 2, marks=pytest.mark.slow),
    ],
)
def test_recomplete_matches_from_scratch_across_backends(
    synthetic_artifact, backend, workers
):
    _run_sequence(
        synthetic_artifact, HARNESS_SEED + 1,
        overrides={"parallel_backend": backend, "n_workers": workers},
    )


@pytest.mark.slow
@pytest.mark.parametrize("scenario", ["housing/mcar", "movies/mcar"])
def test_recomplete_matches_from_scratch_real_datasets(
    scenario, complete_databases, tmp_path_factory
):
    artifact = _artifact_for(scenario, complete_databases, tmp_path_factory)
    _run_sequence(artifact, HARNESS_SEED + 2, steps=2)


def test_recomplete_without_mutations_serves_whole_join_from_cache(
    synthetic_artifact,
):
    engine = ReStore.load(synthetic_artifact)
    cold = engine.recomplete()
    assert cold.recompletion["chunks_walked"] == \
        cold.recompletion["chunks_total"]
    warm = engine.recomplete()
    assert warm.recompletion["chunks_walked"] == 0
    assert warm.recompletion["chunks_cached"] == \
        warm.recompletion["chunks_total"]


# ----------------------------------------------------------------------
# Minimal, sound invalidation
# ----------------------------------------------------------------------


def test_update_only_root_delta_rewalks_exactly_covering_chunks(
    synthetic_artifact,
):
    chunk_size = 7
    engine = ReStore.load(
        synthetic_artifact, config_overrides={"chunk_size": chunk_size}
    )
    scratch = ReStore.load(
        synthetic_artifact, config_overrides={"chunk_size": chunk_size}
    )
    root = engine._default_model().layout.path.tables[0]
    table = engine.db.table(root)
    pk = table.primary_key
    columns = [
        c for c in table.column_names
        if c != pk and table.meta(c).kind != ColumnKind.KEY
    ]
    cold = engine.recomplete()
    total = cold.recompletion["chunks_total"]
    assert total >= 3, "grid too coarse to observe partial invalidation"
    rng = np.random.default_rng(HARNESS_SEED)
    for _ in range(4):
        num_roots = table.num_rows
        positions = rng.choice(num_roots, size=2, replace=False)
        rows = [
            {pk: int(table[pk][pos]),
             columns[0]: _donor_row(table, rng)[columns[0]]}
            for pos in positions
        ]
        expected = affected_tasks(
            [int(p) for p in positions], num_roots, chunk_size
        )
        delta = engine.apply_mutations(updates={root: rows})
        scratch.apply_mutations(updates={root: rows})
        hits_before = engine.partial_cache_stats.hits
        warm = engine.recomplete(delta)
        # minimality: only the covering chunks were re-walked …
        assert warm.recompletion["chunks_walked"] == len(expected)
        # … every untouched chunk was *served from the partial cache* —
        # the counters prove reuse, not just the provenance dict
        assert warm.recompletion["chunks_cached"] == total - len(expected)
        assert engine.partial_cache_stats.hits - hits_before == \
            total - len(expected)
        # soundness: the reused chunks are exactly what a cold walk yields
        scratch.clear_cache()
        assert joins_bitwise_identical(warm, scratch.recomplete())


def test_eviction_is_counted_not_reset(synthetic_artifact):
    engine = ReStore.load(synthetic_artifact, config_overrides={"chunk_size": 7})
    engine.recomplete()
    stats_before = engine.partial_cache_stats
    hits, misses = stats_before.hits, stats_before.misses
    root = engine._default_model().layout.path.tables[0]
    table = engine.db.table(root)
    pk = table.primary_key
    column = next(
        c for c in table.column_names
        if c != pk and table.meta(c).kind != ColumnKind.KEY
    )
    engine.apply_mutations(updates={root: [
        {pk: int(table[pk][0]), column: table[column][1]}
    ]})
    stats = engine.partial_cache_stats
    assert stats.evictions >= 1
    assert stats.invalidations >= 1
    assert stats.hits == hits and stats.misses == misses
