"""Fleet-level serving invariants (slow: training + worker processes).

The properties every future serving PR is validated against, across
scenarios with genuinely different schemas:

* **transport transparency** — a multi-process fleet returns exactly the
  answers the underlying engine returns, for completion and
  complete-only queries alike;
* **fleet-wide single flight** — N identical concurrent queries cause
  exactly one incompleteness join, on exactly one worker;
* **conservation of requests** — everything the fleet admits is
  answered: sum(worker completed) + failures == admitted, with zero
  requests dropped at shutdown.
"""

import asyncio

import pytest

from repro.core import ModelConfig, ReStore, ReStoreConfig
from repro.incomplete import registry
from repro.nn import TrainConfig
from repro.query import parse_query
from repro.serving import (
    FleetConfig,
    FleetRouter,
    ServiceConfig,
    save_artifact,
)

from harness_utils import HARNESS_SEED

pytestmark = pytest.mark.slow

#: scenario → (a completion query, a complete-only query) on its schema.
FLEET_SCENARIOS = {
    "synthetic/biased": (
        "SELECT COUNT(*) FROM ta NATURAL JOIN tb WHERE b = 'v1';",
        "SELECT COUNT(*) FROM ta;",
    ),
    "housing/H1": (
        "SELECT AVG(price) FROM apartment;",
        "SELECT COUNT(*) FROM neighborhood;",
    ),
}


def _fit(name, complete_databases):
    entry = registry.get(name)
    db = complete_databases(entry.dataset)
    dataset = registry.make_scenario_dataset(name, db=db, seed=HARNESS_SEED)
    config = ReStoreConfig(
        model=ModelConfig(
            hidden=(24, 24),
            train=TrainConfig(epochs=5, batch_size=128, lr=1e-2, patience=3,
                              seed=HARNESS_SEED),
        ),
        seed=HARNESS_SEED,
    )
    return ReStore.from_dataset(dataset, config).fit()


@pytest.fixture(scope="module", params=sorted(FLEET_SCENARIOS))
def scenario_artifact(request, complete_databases, tmp_path_factory):
    engine = _fit(request.param, complete_databases)
    path = tmp_path_factory.mktemp("fleet-inv") / "artifact"
    save_artifact(engine, path, scenario=request.param)
    return request.param, path


def test_fleet_transport_transparency_and_single_flight(scenario_artifact):
    scenario, artifact = scenario_artifact
    completion_sql, complete_sql = FLEET_SCENARIOS[scenario]
    engine = ReStore.load(artifact)
    expected_completion = sorted(
        engine.answer(parse_query(completion_sql)).result.values
    )
    expected_complete = sorted(
        engine.answer(parse_query(complete_sql)).result.values
    )

    async def main():
        config = FleetConfig(
            n_workers=2, worker=ServiceConfig(max_queue=32, n_workers=2)
        )
        async with FleetRouter(artifact, config) as fleet:
            answers = await asyncio.gather(
                *(fleet.submit(completion_sql) for _ in range(8)),
                fleet.submit(complete_sql),
            )
            stats = await fleet.stats()
        return answers, stats, fleet.final_worker_stats

    answers, stats, final = asyncio.run(main())

    # Transport transparency: wire answers == direct engine answers.
    for answer in answers[:-1]:
        assert sorted(answer.result.values) == expected_completion
    assert sorted(answers[-1].result.values) == expected_complete

    # Fleet-wide single flight: one join, on exactly one worker.
    per_worker_joins = [w.get("joins_started", 0) for w in stats.per_worker]
    assert sum(per_worker_joins) == 1
    assert sorted(per_worker_joins) == [0, 1]

    # Conservation: everything admitted was answered, nothing dropped.
    assert stats.requests == 9
    assert stats.completed == 9
    assert stats.failed == 0
    assert sum(s["completed"] for s in final) == 9
    assert all(s["queued"] == 0 for s in final)
