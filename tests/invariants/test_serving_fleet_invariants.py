"""Fleet-level serving invariants (slow: training + worker processes).

The properties every future serving PR is validated against, across
scenarios with genuinely different schemas:

* **transport transparency** — a multi-process fleet returns exactly the
  answers the underlying engine returns, for completion and
  complete-only queries alike;
* **fleet-wide single flight** — N identical concurrent queries cause
  exactly one incompleteness join, on exactly one worker;
* **conservation of requests** — everything the fleet admits is
  answered: sum(worker completed) + failures == admitted, with zero
  requests dropped at shutdown;
* **rolling swap under faults** — killing a worker mid-rollout leaves
  the swap to complete on the survivors, strands nothing silently (every
  admitted request either completes or fails with the stable
  ``WorkerError`` wire semantics), and post-swap answers come from the
  new artifact.
"""

import asyncio

import pytest

from repro.core import ModelConfig, ReStore, ReStoreConfig
from repro.errors import WorkerError
from repro.incomplete import registry
from repro.nn import TrainConfig
from repro.query import parse_query
from repro.serving import (
    FleetConfig,
    FleetRouter,
    ServiceConfig,
    save_artifact,
)

from harness_utils import HARNESS_SEED

pytestmark = pytest.mark.slow

#: scenario → (a completion query, a complete-only query) on its schema.
FLEET_SCENARIOS = {
    "synthetic/biased": (
        "SELECT COUNT(*) FROM ta NATURAL JOIN tb WHERE b = 'v1';",
        "SELECT COUNT(*) FROM ta;",
    ),
    "housing/H1": (
        "SELECT AVG(price) FROM apartment;",
        "SELECT COUNT(*) FROM neighborhood;",
    ),
}


def _fit(name, complete_databases):
    entry = registry.get(name)
    db = complete_databases(entry.dataset)
    dataset = registry.make_scenario_dataset(name, db=db, seed=HARNESS_SEED)
    config = ReStoreConfig(
        model=ModelConfig(
            hidden=(24, 24),
            train=TrainConfig(epochs=5, batch_size=128, lr=1e-2, patience=3,
                              seed=HARNESS_SEED),
        ),
        seed=HARNESS_SEED,
    )
    return ReStore.from_dataset(dataset, config).fit()


@pytest.fixture(scope="module", params=sorted(FLEET_SCENARIOS))
def scenario_artifact(request, complete_databases, tmp_path_factory):
    engine = _fit(request.param, complete_databases)
    path = tmp_path_factory.mktemp("fleet-inv") / "artifact"
    save_artifact(engine, path, scenario=request.param)
    return request.param, path


def test_fleet_transport_transparency_and_single_flight(scenario_artifact):
    scenario, artifact = scenario_artifact
    completion_sql, complete_sql = FLEET_SCENARIOS[scenario]
    engine = ReStore.load(artifact)
    expected_completion = sorted(
        engine.answer(parse_query(completion_sql)).result.values
    )
    expected_complete = sorted(
        engine.answer(parse_query(complete_sql)).result.values
    )

    async def main():
        config = FleetConfig(
            n_workers=2, worker=ServiceConfig(max_queue=32, n_workers=2)
        )
        async with FleetRouter(artifact, config) as fleet:
            answers = await asyncio.gather(
                *(fleet.submit(completion_sql) for _ in range(8)),
                fleet.submit(complete_sql),
            )
            stats = await fleet.stats()
        return answers, stats, fleet.final_worker_stats

    answers, stats, final = asyncio.run(main())

    # Transport transparency: wire answers == direct engine answers.
    for answer in answers[:-1]:
        assert sorted(answer.result.values) == expected_completion
    assert sorted(answers[-1].result.values) == expected_complete

    # Fleet-wide single flight: one join, on exactly one worker.
    per_worker_joins = [w.get("joins_started", 0) for w in stats.per_worker]
    assert sum(per_worker_joins) == 1
    assert sorted(per_worker_joins) == [0, 1]

    # Conservation: everything admitted was answered, nothing dropped.
    assert stats.requests == 9
    assert stats.completed == 9
    assert stats.failed == 0
    assert sum(s["completed"] for s in final) == 9
    assert all(s["queued"] == 0 for s in final)


# ----------------------------------------------------------------------
# Fault injection: worker death during a rolling swap
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def swap_artifacts(complete_databases, tmp_path_factory):
    """A v1 artifact plus an upgrade built by mutating + fine-tuning it."""
    engine = _fit("synthetic/biased", complete_databases)
    root = tmp_path_factory.mktemp("fleet-swap")
    base = root / "v1"
    save_artifact(engine, base, scenario="synthetic/biased")
    twin = ReStore.load(base)
    table = twin.db.table("ta")
    delta = twin.apply_mutations(
        deletes={"ta": [int(k) for k in table["id"][:5]]}
    )
    twin.fine_tune()
    upgraded = root / "v2"
    save_artifact(twin, upgraded, scenario="synthetic/biased",
                  parent=base, delta=delta)
    return base, upgraded


def test_rolling_swap_completes_on_survivors_after_worker_death(
    swap_artifacts,
):
    base, upgraded = swap_artifacts
    completion_sql, complete_sql = FLEET_SCENARIOS["synthetic/biased"]
    expected_new = dict(
        ReStore.load(upgraded).answer(parse_query(complete_sql)).result.values
    )

    async def main():
        config = FleetConfig(
            n_workers=2, worker=ServiceConfig(max_queue=32, n_workers=2)
        )
        async with FleetRouter(base, config) as fleet:
            # put real load in flight, then kill the worker carrying it
            load = [
                asyncio.create_task(fleet.submit(completion_sql))
                for _ in range(12)
            ]
            await asyncio.sleep(0)  # let the router route the burst
            victim = max(fleet._workers, key=lambda c: c.backlog())
            victim.process.kill()
            outcomes = await asyncio.gather(*load, return_exceptions=True)
            # wait until the router has observed the death so the rollout
            # deterministically sees one dead worker
            for _ in range(200):
                if not victim.alive:
                    break
                await asyncio.sleep(0.05)
            assert not victim.alive
            result = await fleet.rolling_swap(upgraded)
            post = await fleet.submit(complete_sql)
        return victim.index, outcomes, result, post

    victim_index, outcomes, result, post = asyncio.run(main())
    survivor_index = 1 - victim_index

    # nothing is silently dropped: every admitted request either completed
    # or failed loudly with the stable worker-death semantics
    failures = [o for o in outcomes if isinstance(o, BaseException)]
    successes = [o for o in outcomes if not isinstance(o, BaseException)]
    assert len(failures) + len(successes) == 12
    assert all(isinstance(f, WorkerError) for f in failures)
    assert failures, "the killed worker should have stranded its backlog"

    # the rollout completed on the survivor and skipped the corpse
    assert result["swapped"] == [survivor_index]
    assert result["skipped"] == [victim_index]

    # post-swap answers come from the new artifact
    assert dict(post.result.values) == expected_new
