"""Tests for the fleet tier: wire protocol, routing, overload, workers.

Three rings of confidence, cheapest first:

* **protocol** — frame encode/decode round trips, version mismatch and
  truncation failure modes, error-taxonomy wire codes (no sockets);
* **router policy** — consistent-hash determinism/balance, shed-oldest
  and per-tenant quota admission against *fake* worker clients (no
  processes);
* **end to end** (``slow``) — a real :class:`ServiceWorker` process
  behind a socket, then a 2-worker :class:`FleetRouter`: answer parity,
  fleet-wide single-flight, clean drain on shutdown.
"""

import asyncio
import pickle
import socket
import threading
from pathlib import Path

import pytest

from repro import ReStore, ReStoreConfig, parse_query
from repro.core import ModelConfig
from repro.errors import (
    ProtocolError,
    QueryValidationError,
    ServiceOverloadedError,
    WorkerError,
)
from repro.incomplete.registry import make_scenario_dataset
from repro.nn import TrainConfig
from repro.obs import (
    Tracer,
    disable_tracing,
    enable_tracing,
    export_chrome_trace,
    recent_records,
    span_tree,
    validate_chrome_trace,
)
from repro.serving import (
    ConsistentHashRing,
    FleetConfig,
    FleetRouter,
    ServiceConfig,
    ServiceWorker,
    save_artifact,
)
from repro.serving.fleet import _WorkerClient
from repro.serving.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    decode_payload,
    encode_frame,
    error_fields,
    frame_length,
    raise_wire_error,
    recv_frame,
    send_frame,
)

FAST = TrainConfig(epochs=3, batch_size=128, lr=1e-2, patience=2)

COMPLETION_SQL = "SELECT COUNT(*) FROM ta NATURAL JOIN tb WHERE b = 'v1';"
COMPLETE_ONLY_SQL = "SELECT COUNT(*) FROM ta;"
GROUPED_SQL = "SELECT COUNT(*) FROM ta NATURAL JOIN tb GROUP BY a;"


# ----------------------------------------------------------------------
# Protocol (sans-io)
# ----------------------------------------------------------------------


class TestProtocolFrames:
    def test_round_trip(self):
        frame = encode_frame("query", id=7, payload=[1, 2, 3])
        length = frame_length(frame[:4])
        message = decode_payload(frame[4:4 + length])
        assert message["kind"] == "query"
        assert message["id"] == 7
        assert message["payload"] == [1, 2, 3]
        assert message["v"] == PROTOCOL_VERSION

    def test_version_mismatch_raises(self):
        frame = encode_frame("hello")
        payload = pickle.loads(frame[4:])
        payload["v"] = PROTOCOL_VERSION + 1
        with pytest.raises(ProtocolError, match="version mismatch"):
            decode_payload(pickle.dumps(payload))

    def test_malformed_payloads_raise(self):
        with pytest.raises(ProtocolError, match="undecodable"):
            decode_payload(b"\x00not-a-pickle")
        with pytest.raises(ProtocolError, match="malformed"):
            decode_payload(pickle.dumps(["no", "kind"]))

    def test_oversize_length_prefix_rejected(self):
        import struct

        header = struct.pack("!I", MAX_FRAME_BYTES + 1)
        with pytest.raises(ProtocolError, match="exceeds MAX_FRAME_BYTES"):
            frame_length(header)

    def test_socket_round_trip_and_clean_eof(self):
        left, right = socket.socketpair()
        try:
            send_frame(left, "stats", id=3)
            message = recv_frame(right)
            assert message["kind"] == "stats" and message["id"] == 3
            left.close()
            assert recv_frame(right) is None  # clean EOF between frames
        finally:
            right.close()

    def test_truncated_frame_raises_mid_frame(self):
        left, right = socket.socketpair()
        try:
            frame = encode_frame("query", id=1)
            left.sendall(frame[: len(frame) - 2])  # cut the payload short
            left.close()
            with pytest.raises(ProtocolError, match="mid-frame"):
                recv_frame(right)
        finally:
            right.close()


class TestWireErrors:
    def test_error_fields_carry_stable_codes(self):
        fields = error_fields(9, ServiceOverloadedError("full"))
        assert fields == {
            "id": 9,
            "code": "service_overloaded",
            "message": "full",
            "error_type": "ServiceOverloadedError",
        }

    def test_raise_wire_error_restores_taxonomy_class(self):
        fields = error_fields(1, QueryValidationError("no such column"))
        with pytest.raises(QueryValidationError, match="no such column"):
            raise_wire_error(fields)
        # ...and taxonomy classes keep their stdlib bases across the wire.
        with pytest.raises(ValueError):
            raise_wire_error(fields)

    def test_unknown_code_and_foreign_error_map_to_internal(self):
        fields = error_fields(2, KeyError("whoops"))
        assert fields["code"] == "internal"
        with pytest.raises(WorkerError, match="KeyError"):
            raise_wire_error(fields)
        with pytest.raises(WorkerError):
            raise_wire_error({"code": "brand_new_code", "message": "hm"})


# ----------------------------------------------------------------------
# Consistent-hash ring
# ----------------------------------------------------------------------


class TestConsistentHashRing:
    def test_deterministic_across_instances(self):
        a = ConsistentHashRing([0, 1, 2, 3])
        b = ConsistentHashRing([0, 1, 2, 3])
        keys = [f"signature-{i}" for i in range(200)]
        assert [a.node_for(k) for k in keys] == [b.node_for(k) for k in keys]

    def test_every_node_owns_some_keys(self):
        ring = ConsistentHashRing([0, 1, 2, 3], virtual_nodes=64)
        owners = {ring.node_for(f"key-{i}") for i in range(500)}
        assert owners == {0, 1, 2, 3}

    def test_removal_only_remaps_removed_nodes_keys(self):
        ring = ConsistentHashRing([0, 1, 2], virtual_nodes=64)
        keys = [f"key-{i}" for i in range(300)]
        before = {k: ring.node_for(k) for k in keys}
        ring.remove(1)
        for key in keys:
            after = ring.node_for(key)
            if before[key] != 1:
                assert after == before[key]  # survivors keep their keys
            else:
                assert after != 1

    def test_empty_ring_raises(self):
        ring = ConsistentHashRing([])
        with pytest.raises(WorkerError, match="ring is empty"):
            ring.node_for("anything")


# ----------------------------------------------------------------------
# Router admission policy (fake workers, no processes, no loop)
# ----------------------------------------------------------------------


def _policy_router(n_workers=2, **config_kwargs) -> FleetRouter:
    """A router with fake in-memory workers, for admission-policy tests."""
    router = FleetRouter(
        "unused-artifact",
        FleetConfig(n_workers=n_workers, **config_kwargs),
    )
    router._workers = [_WorkerClient(i) for i in range(n_workers)]
    for client in router._workers:
        client.alive = True
    router._ring = ConsistentHashRing(range(n_workers))
    router._routing_key = lambda query, bias: (("sig", query), None)
    return router


class _FakeFuture:
    def __init__(self):
        self.exception = None

    def done(self):
        return self.exception is not None

    def set_exception(self, exc):
        self.exception = exc


def _admit(router, key, tenant="default", at=0.0):
    return router._admit(key, None, tenant, _FakeFuture(), at)


class TestFleetAdmission:
    def test_routes_same_key_to_same_worker(self):
        router = _policy_router()
        _, first = _admit(router, "q-same", at=0.0)
        _, second = _admit(router, "q-same", at=1.0)
        assert first is second
        assert len(first.queue) == 2

    def test_sheds_oldest_queued_when_backlog_full(self):
        router = _policy_router(max_pending=2)
        oldest, worker = _admit(router, "q-old", at=0.0)
        _admit(router, "q-mid", at=1.0)
        # Third request: backlog is at max_pending → oldest queued is shed.
        _, _ = _admit(router, "q-new", at=2.0)
        assert isinstance(oldest.future.exception, ServiceOverloadedError)
        assert router._counters.shed == 1
        assert router._backlog() == 2
        assert oldest not in worker.queue

    def test_rejects_newcomer_when_everything_is_on_the_wire(self):
        router = _policy_router(max_pending=1)
        pending, worker = _admit(router, "q-flying", at=0.0)
        # Simulate dispatch: the request moved from queue to inflight.
        worker.queue.popleft()
        worker.inflight[pending.request_id] = pending
        with pytest.raises(ServiceOverloadedError, match="backlog is full"):
            _admit(router, "q-late", at=1.0)
        assert router._counters.rejected == 1
        assert pending.future.exception is None  # in-flight never shed

    def test_tenant_quota_rejects_only_the_greedy_tenant(self):
        router = _policy_router(tenant_quota=2, max_pending=100)
        _admit(router, "q-a1", tenant="alice")
        _admit(router, "q-a2", tenant="alice")
        with pytest.raises(ServiceOverloadedError, match="alice"):
            _admit(router, "q-a3", tenant="alice")
        # Bob is unaffected by Alice's quota exhaustion.
        _admit(router, "q-b1", tenant="bob")
        assert router._counters.rejected == 1

    def test_completion_releases_tenant_quota(self):
        router = _policy_router(tenant_quota=1, max_pending=100)
        pending, worker = _admit(router, "q-1", tenant="alice")
        with pytest.raises(ServiceOverloadedError):
            _admit(router, "q-2", tenant="alice")
        worker.queue.popleft()
        router._finish(pending)  # what the reader does on answer/error
        _admit(router, "q-3", tenant="alice")  # quota is free again

    def test_fail_worker_strands_nothing(self):
        router = _policy_router(n_workers=1, max_pending=100)
        pending_a, worker = _admit(router, "q-a", at=0.0)
        pending_b, _ = _admit(router, "q-b", at=1.0)
        worker.queue.popleft()
        worker.inflight[pending_a.request_id] = pending_a
        router._fail_worker(worker, WorkerError("worker 0 gone"))
        assert isinstance(pending_a.future.exception, WorkerError)
        assert isinstance(pending_b.future.exception, WorkerError)
        assert router._backlog() == 0
        assert router._tenant_backlog == {}


class TestFleetConfigValidation:
    @pytest.mark.parametrize(
        "field", ["n_workers", "max_pending", "dispatch_window", "virtual_nodes"]
    )
    def test_rejects_non_positive_naming_field(self, field):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match=f"FleetConfig.{field}"):
            FleetConfig(**{field: 0})

    def test_dispatch_window_bounded_by_worker_queue(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="dispatch_window"):
            FleetConfig(
                dispatch_window=65, worker=ServiceConfig(max_queue=64)
            )


# ----------------------------------------------------------------------
# End to end: real worker processes (slow)
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def fleet_artifact(tmp_path_factory) -> Path:
    dataset = make_scenario_dataset(
        "synthetic/biased", keep_rate=0.5, seed=1, scale=0.2
    )
    config = ReStoreConfig(model=ModelConfig(train=FAST), seed=3)
    engine = ReStore.from_dataset(dataset, config).fit()
    path = tmp_path_factory.mktemp("fleet") / "artifact"
    save_artifact(engine, path, scenario="synthetic/biased")
    return path


@pytest.fixture(scope="module")
def reference_engine(fleet_artifact) -> ReStore:
    return ReStore.load(fleet_artifact)


@pytest.mark.slow
class TestServiceWorkerEndToEnd:
    def test_worker_serves_over_socketpair(self, fleet_artifact, reference_engine):
        """One worker, no router: frames in, answers out, drain on shutdown."""
        worker = ServiceWorker.from_artifact(
            fleet_artifact, ServiceConfig(max_queue=16, n_workers=2)
        )
        ours, theirs = socket.socketpair()
        server = threading.Thread(
            target=worker.serve_connection, args=(theirs,), daemon=True
        )
        server.start()
        try:
            send_frame(ours, "hello")
            hello = recv_frame(ours)
            assert hello["kind"] == "hello"
            assert hello["protocol"] == PROTOCOL_VERSION

            query = parse_query(COMPLETION_SQL)
            for request_id in range(4):
                send_frame(ours, "query", id=request_id, query=query)
            replies = {}
            while len(replies) < 4:
                frame = recv_frame(ours)
                assert frame["kind"] == "answer", frame
                replies[frame["id"]] = frame["answer"]
            expected = reference_engine.answer(query).result.values
            assert all(
                a.result.values == expected for a in replies.values()
            )
            # Wire answers travel without worker-side provenance.
            assert all(a.model is None for a in replies.values())
            assert all(a.completed is None for a in replies.values())

            bad = parse_query("SELECT AVG(nope) FROM ta;")
            send_frame(ours, "query", id=99, query=bad)
            frame = recv_frame(ours)
            assert frame["kind"] == "error" and frame["id"] == 99
            assert frame["code"] == "query_invalid"

            send_frame(ours, "stats", id=100)
            frame = recv_frame(ours)
            assert frame["kind"] == "stats_reply"
            assert frame["stats"]["completed"] == 4
            assert frame["stats"]["joins_started"] == 1

            send_frame(ours, "shutdown")
            frame = recv_frame(ours)
            assert frame["kind"] == "bye"
            assert frame["stats"]["completed"] == 4
        finally:
            ours.close()
            server.join(timeout=10)
            assert not server.is_alive()

    def test_worker_overload_maps_to_wire_code(self, fleet_artifact):
        worker = ServiceWorker.from_artifact(
            fleet_artifact,
            ServiceConfig(max_queue=1, max_batch=1, batch_window_ms=0.0),
        )
        assert worker.core.gate.try_acquire()  # hold the only slot
        ours, theirs = socket.socketpair()
        server = threading.Thread(
            target=worker.serve_connection, args=(theirs,), daemon=True
        )
        server.start()
        try:
            send_frame(
                ours, "query", id=1, query=parse_query(COMPLETE_ONLY_SQL)
            )
            frame = recv_frame(ours)
            assert frame["kind"] == "error"
            assert frame["code"] == "service_overloaded"
        finally:
            worker.core.gate.release()
            ours.close()
            server.join(timeout=10)


@pytest.mark.slow
class TestFleetRouterEndToEnd:
    def test_two_worker_fleet(self, fleet_artifact, reference_engine):
        expected = {
            sql: reference_engine.answer(parse_query(sql)).result.values
            for sql in (COMPLETION_SQL, COMPLETE_ONLY_SQL, GROUPED_SQL)
        }

        async def main():
            config = FleetConfig(
                n_workers=2, worker=ServiceConfig(max_queue=32, n_workers=2)
            )
            async with FleetRouter(fleet_artifact, config) as fleet:
                # N identical concurrent queries: fleet-wide single flight.
                answers = await asyncio.gather(
                    *(fleet.submit(COMPLETION_SQL) for _ in range(12))
                )
                burst = await fleet.stats()
                others = [
                    await fleet.submit(COMPLETE_ONLY_SQL),
                    await fleet.submit(GROUPED_SQL),
                ]
                stats = await fleet.stats()
                with pytest.raises(ValueError, match="nope"):
                    await fleet.submit("SELECT AVG(nope) FROM ta;")
            # The bye snapshots land during close(), i.e. after the
            # context exits — read them only now.
            return answers, others, burst, stats, fleet.final_worker_stats

        answers, others, burst, stats, final = asyncio.run(main())
        assert all(
            a.result.values == expected[COMPLETION_SQL] for a in answers
        )
        assert others[0].result.values == expected[COMPLETE_ONLY_SQL]
        assert others[1].result.values == expected[GROUPED_SQL]
        # Fleet-wide single flight while cold: the identical burst cost
        # one join total, on exactly one worker.
        assert burst.joins_started == 1
        burst_joins = [w.get("joins_started", 0) for w in burst.per_worker]
        assert sorted(burst_joins) == [0, 1]
        # Warm spreading may replicate the (now-warm) signature's join
        # into the other worker's cache — bounded at one per worker.
        per_worker_joins = [
            w.get("joins_started", 0) for w in stats.per_worker
        ]
        assert all(j <= 1 for j in per_worker_joins)
        assert stats.completed == 14
        # Validation failures raise before admission, like the core's
        # submit: only admitted requests are counted.
        assert stats.requests == 14
        # Clean shutdown: both workers sent their final bye snapshots, and
        # everything the fleet accepted was answered before closing.
        assert all(isinstance(s, dict) for s in final)
        assert sum(s["completed"] for s in final) == 14

    def test_traced_query_stitches_one_cross_process_tree(
        self, fleet_artifact, tmp_path
    ):
        """The telemetry contract, end to end: one traced fleet query's
        spans — router submit, worker batch/single-flight, engine answer,
        chunk walk — form a single tree across process boundaries, export
        as valid Chrome-trace JSON, and the workers' bye-frame counters
        sum to the router's totals with telemetry enabled throughout."""
        tracer = Tracer()
        enable_tracing(tracer=tracer)
        try:

            async def main():
                config = FleetConfig(
                    n_workers=2, worker=ServiceConfig(max_queue=32, n_workers=2)
                )
                async with FleetRouter(fleet_artifact, config) as fleet:
                    first = await fleet.submit(COMPLETION_SQL)
                    rest = await asyncio.gather(
                        *(fleet.submit(COMPLETION_SQL) for _ in range(5))
                    )
                    router = fleet.router_stats()
                return first, rest, router, fleet.final_worker_stats

            first, rest, router, final = asyncio.run(main())
        finally:
            disable_tracing()

        assert first.result.values == rest[0].result.values

        # --- one stitched tree per traced request ---------------------
        spans = tracer.spans()
        by_trace = {}
        for span in spans:
            by_trace.setdefault(span.trace_id, []).append(span)
        roots = {
            tid: [s for s in group if s.parent_id is None]
            for tid, group in by_trace.items()
        }
        # every trace has exactly one root: the router's submit span
        assert len(by_trace) == 6
        assert all(
            len(r) == 1 and r[0].name == "fleet.submit"
            for r in roots.values()
        )
        # the first (cold, leading) trace reaches worker-side depth
        first_trace = [
            tid for tid, group in by_trace.items()
            if any(s.name == "join.chunk" for s in group)
        ]
        assert first_trace, "no trace reached the chunk walk"
        deep = by_trace[first_trace[0]]
        names = {s.name for s in deep}
        assert {"fleet.submit", "serve.group", "serve.single_flight",
                "engine.completed_join", "join.walk_chunks",
                "join.chunk"} <= names
        assert len({s.pid for s in deep}) == 2  # router + worker pids
        # parents all resolve within the trace (stitching, not orphans)
        ids = {s.span_id for s in deep}
        assert all(
            s.parent_id in ids for s in deep if s.parent_id is not None
        )
        forest = span_tree(deep)
        assert len(forest) == 1

        # --- valid Chrome-trace JSON ----------------------------------
        doc = export_chrome_trace(tmp_path / "fleet-trace.json", tracer=tracer)
        assert validate_chrome_trace(doc) == []

        # --- bye-frame stats sum to router totals ---------------------
        assert router["completed"] == 6
        assert all(isinstance(s, dict) for s in final)
        assert sum(s["completed"] for s in final) == router["completed"]
        assert sum(s["requests"] for s in final) == router["requests"]
        assert sum(s["failed"] for s in final) == router["failed"]

        # --- lifecycle events flowed through the structured log -------
        for event in ("worker.spawn", "worker.ready", "fleet.drain"):
            assert recent_records(event=event), event

    def test_startup_failure_reports_cause(self, tmp_path):
        async def main():
            config = FleetConfig(n_workers=1, connect_timeout_s=60.0)
            router = FleetRouter(tmp_path / "not-an-artifact", config)
            with pytest.raises(Exception) as excinfo:
                await router.start()
            return excinfo

        excinfo = asyncio.run(main())
        # The router surfaces the real startup cause — its own routing
        # artifact load failure or the worker's reported error — never a
        # bare connect timeout.
        message = str(excinfo.value)
        assert "manifest" in message or "worker 0" in message


# ----------------------------------------------------------------------
# Zero-downtime hot swap (slow)
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def fleet_artifact_v2(fleet_artifact, tmp_path_factory) -> Path:
    """The upgrade target: same schema, mutated rows, warm-started models.

    Built by mutating a twin of the v1 engine and fine-tuning, so swap
    tests can tell the versions apart by their answers (row counts
    change) while both serve the same queries.
    """
    engine = ReStore.load(fleet_artifact)
    table = engine.db.table("ta")
    doomed = [int(k) for k in table["id"][:5]]
    delta = engine.apply_mutations(deletes={"ta": doomed})
    engine.fine_tune()
    path = tmp_path_factory.mktemp("fleet") / "artifact-v2"
    save_artifact(engine, path, scenario="synthetic/biased",
                  parent=fleet_artifact, delta=delta)
    return path


@pytest.fixture(scope="module")
def reference_engine_v2(fleet_artifact_v2) -> ReStore:
    return ReStore.load(fleet_artifact_v2)


def _values(engine, sql):
    return dict(engine.answer(parse_query(sql)).result.values)


@pytest.mark.slow
class TestWorkerHotSwap:
    def test_swap_frame_switches_engine_and_corrupt_swap_is_rejected(
        self, fleet_artifact, fleet_artifact_v2,
        reference_engine, reference_engine_v2, tmp_path,
    ):
        old = _values(reference_engine, COMPLETE_ONLY_SQL)
        new = _values(reference_engine_v2, COMPLETE_ONLY_SQL)
        assert old != new, "v2 artifact must be distinguishable by answers"

        worker = ServiceWorker.from_artifact(
            fleet_artifact, ServiceConfig(max_queue=16, n_workers=2)
        )
        ours, theirs = socket.socketpair()
        server = threading.Thread(
            target=worker.serve_connection, args=(theirs,), daemon=True
        )
        server.start()
        query = parse_query(COMPLETE_ONLY_SQL)

        def ask(request_id):
            send_frame(ours, "query", id=request_id, query=query)
            frame = recv_frame(ours)
            assert frame["kind"] == "answer" and frame["id"] == request_id
            return dict(frame["answer"].result.values)

        try:
            assert ask(1) == old

            send_frame(ours, "swap", id=2, path=str(fleet_artifact_v2))
            frame = recv_frame(ours)
            assert frame["kind"] == "swap_reply" and frame["id"] == 2
            assert frame["ok"] is True
            assert frame["info"]["scenario"] == "synthetic/biased"
            assert frame["info"]["lineage"]["parent_path"] == str(fleet_artifact)

            # post-swap answers come from the new artifact
            assert ask(3) == new

            # a corrupt artifact is rejected with a taxonomy code and the
            # worker keeps serving the version it already has
            corrupt = tmp_path / "corrupt"
            corrupt.mkdir()
            send_frame(ours, "swap", id=4, path=str(corrupt))
            frame = recv_frame(ours)
            assert frame["kind"] == "swap_reply" and frame["id"] == 4
            assert frame["ok"] is False
            assert frame["code"].startswith("artifact")
            assert ask(5) == new

            send_frame(ours, "shutdown")
            assert recv_frame(ours)["kind"] == "bye"
        finally:
            ours.close()
            server.join(timeout=10)
            assert not server.is_alive()


@pytest.mark.slow
class TestFleetRollingSwap:
    def test_rolling_swap_under_load_drops_nothing(
        self, fleet_artifact, fleet_artifact_v2,
        reference_engine, reference_engine_v2,
    ):
        old = _values(reference_engine, COMPLETION_SQL)
        new = _values(reference_engine_v2, COMPLETION_SQL)
        new_count = _values(reference_engine_v2, COMPLETE_ONLY_SQL)

        async def main():
            config = FleetConfig(
                n_workers=2, worker=ServiceConfig(max_queue=32, n_workers=2)
            )
            async with FleetRouter(fleet_artifact, config) as fleet:
                # keep queries in flight while the rollout runs
                load = [
                    asyncio.create_task(fleet.submit(COMPLETION_SQL))
                    for _ in range(16)
                ]
                result = await fleet.rolling_swap(fleet_artifact_v2)
                answers = await asyncio.gather(*load)
                post = [
                    await fleet.submit(COMPLETION_SQL),
                    await fleet.submit(COMPLETE_ONLY_SQL),
                ]
                stats = await fleet.stats()
            return result, answers, post, stats

        result, answers, post, stats = asyncio.run(main())
        # every worker upgraded, none skipped
        assert result["swapped"] == [0, 1]
        assert result["skipped"] == []
        assert result["info"]["scenario"] == "synthetic/biased"
        # zero dropped in-flight requests: each concurrent answer is a
        # coherent old- or new-version answer (never an error, never mixed)
        for answer in answers:
            assert dict(answer.result.values) in (old, new)
        # after the rollout, the fleet serves the new artifact only
        assert dict(post[0].result.values) == new
        assert dict(post[1].result.values) == new_count
        assert stats.completed == 18
        assert stats.failed == 0

    def test_rolling_swap_to_corrupt_artifact_keeps_old_version(
        self, fleet_artifact, reference_engine, tmp_path,
    ):
        from repro.errors import ArtifactError

        old = _values(reference_engine, COMPLETE_ONLY_SQL)
        corrupt = tmp_path / "corrupt"
        corrupt.mkdir()

        async def main():
            config = FleetConfig(
                n_workers=2, worker=ServiceConfig(max_queue=32, n_workers=2)
            )
            async with FleetRouter(fleet_artifact, config) as fleet:
                before = await fleet.submit(COMPLETE_ONLY_SQL)
                with pytest.raises(ArtifactError):
                    await fleet.rolling_swap(corrupt)
                # the rejecting worker validated before swapping: the whole
                # fleet keeps serving the old version
                after = await fleet.submit(COMPLETE_ONLY_SQL)
                assert str(fleet.artifact_path) == str(fleet_artifact)
            return before, after

        before, after = asyncio.run(main())
        assert dict(before.result.values) == old
        assert dict(after.result.values) == old
