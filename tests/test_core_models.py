"""Tests for AR/SSAR completion models, forests and NN replacement."""

import numpy as np
import pytest

from repro.core import (
    ARCompletionModel,
    EuclideanReplacer,
    EvidenceForest,
    ModelConfig,
    PathLayout,
    SSARCompletionModel,
    TupleSpace,
    build_child_index,
    build_encoders,
)
from repro.datasets import SyntheticConfig, generate_synthetic
from repro.incomplete import RemovalSpec, make_incomplete
from repro.nn import TrainConfig
from repro.relational import CompletionPath, fan_out_relations

FAST = TrainConfig(epochs=6, batch_size=128, lr=1e-2, patience=3)


@pytest.fixture(scope="module")
def synthetic_setup():
    db = generate_synthetic(SyntheticConfig(num_parents=300, predictability=0.9,
                                            seed=0))
    dataset = make_incomplete(db, [RemovalSpec("tb", "b", 0.5, 0.4)],
                              tf_keep_rate=0.5, seed=1)
    encoders = build_encoders(dataset.incomplete, num_bins=8)
    layout = PathLayout(dataset.incomplete, dataset.annotation,
                        CompletionPath(("ta", "tb")), encoders)
    return db, dataset, encoders, layout


def fitted_ar(layout, epochs=6):
    model = ARCompletionModel(layout, ModelConfig(
        hidden=(32, 32), train=TrainConfig(epochs=epochs, batch_size=128,
                                           lr=1e-2, patience=3)))
    model.fit()
    return model


class TestARModel:
    def test_requires_fit(self, synthetic_setup):
        *_, layout = synthetic_setup
        model = ARCompletionModel(layout, ModelConfig(train=FAST))
        with pytest.raises(RuntimeError):
            model.target_test_loss()
        with pytest.raises(RuntimeError):
            model.sample_slot(np.zeros((1, layout.num_variables), dtype=int), 1,
                              np.random.default_rng(0))

    def test_fit_records_result(self, synthetic_setup):
        *_, layout = synthetic_setup
        model = fitted_ar(layout)
        assert model.train_result is not None
        assert model.train_result.epochs_run >= 3
        assert model.training_data.num_rows > 0

    def test_signal_positive_for_predictable_data(self, synthetic_setup):
        *_, layout = synthetic_setup
        model = fitted_ar(layout, epochs=12)
        assert model.marginal_target_loss() > model.target_test_loss()

    def test_predict_tuple_factors_masks_unknown(self, synthetic_setup):
        *_, layout = synthetic_setup
        model = fitted_ar(layout)
        prefix = np.zeros((16, layout.num_variables), dtype=np.int64)
        tfs = model.predict_tuple_factors(prefix, 1, np.random.default_rng(0))
        codec = layout.tf_codec_for(1)
        assert (tfs >= 0).all()
        assert (tfs <= codec.cap).all()
        # The sampled code was written into the prefix.
        assert (prefix[:, layout.tf_variable_index(1)] == codec.encode(tfs)).all()

    def test_predict_tuple_factors_min_counts(self, synthetic_setup):
        *_, layout = synthetic_setup
        model = fitted_ar(layout)
        prefix = np.zeros((20, layout.num_variables), dtype=np.int64)
        mins = np.full(20, 3)
        tfs = model.predict_tuple_factors(prefix, 1, np.random.default_rng(0),
                                          min_counts=mins)
        assert (tfs >= 3).all()

    def test_min_counts_above_cap_falls_back(self, synthetic_setup):
        *_, layout = synthetic_setup
        model = fitted_ar(layout)
        codec = layout.tf_codec_for(1)
        prefix = np.zeros((4, layout.num_variables), dtype=np.int64)
        mins = np.full(4, codec.cap + 5)
        tfs = model.predict_tuple_factors(prefix, 1, np.random.default_rng(0),
                                          min_counts=mins)
        assert (tfs == codec.cap).all()

    def test_expected_tuple_factors_reasonable(self, synthetic_setup):
        db, dataset, _, layout = synthetic_setup
        model = fitted_ar(layout, epochs=12)
        prefix = np.zeros((50, layout.num_variables), dtype=np.int64)
        expected = model.expected_tuple_factors(prefix, 1)
        assert expected.shape == (50,)
        assert (expected >= 0).all()

    def test_sample_slot_fills_target(self, synthetic_setup):
        *_, layout = synthetic_setup
        model = fitted_ar(layout)
        prefix = np.zeros((8, layout.num_variables), dtype=np.int64)
        out = model.sample_slot(prefix, 1, np.random.default_rng(0))
        start, stop = layout.slot_range(1)
        for var in range(start, stop):
            assert out[:, var].max() < layout.variables[var].vocab_size

    def test_sampled_b_tracks_evidence(self, synthetic_setup):
        db, dataset, encoders, layout = synthetic_setup
        model = fitted_ar(layout, epochs=15)
        # Encode evidence rows with a known 'a' value and check sampled 'b'
        # predominantly agrees (predictability 0.9).
        ta = dataset.incomplete.table("ta")
        codes = np.zeros((len(ta), layout.num_variables), dtype=np.int64)
        codes[:, 0] = encoders["ta"].encode_columns({"a": ta["a"]})[:, 0]
        model.predict_tuple_factors(codes, 1, np.random.default_rng(0))
        out = model.sample_slot(codes, 1, np.random.default_rng(1))
        b_var = next(i for i, v in enumerate(layout.variables)
                     if v.name == "tb.b")
        b_vals = encoders["tb"].codec("b").decode(out[:, b_var])
        agree = (b_vals == ta["a"]).mean()
        assert agree > 0.6

    def test_debias_weights_shape(self, synthetic_setup):
        *_, layout = synthetic_setup
        model = fitted_ar(layout)
        weights = model._debias_weights(model.training_data)
        assert set(weights) == set(range(layout.num_variables))
        for w in weights.values():
            assert len(w) == model.training_data.num_rows
            assert (w > 0).all() and (w <= 1.0).all()


class TestChildIndexAndForest:
    def test_child_index_counts(self, synthetic_setup):
        db, dataset, *_ = synthetic_setup
        fk = dataset.incomplete.fk_between("tb", "ta")
        index = build_child_index(dataset.incomplete, fk)
        counts = index.counts()
        assert counts.sum() == len(dataset.incomplete.table("tb"))
        # children_of matches the FK relation
        ta = dataset.incomplete.table("ta")
        tb = dataset.incomplete.table("tb")
        for parent_row in range(0, len(ta), 37):
            children = index.children_of(parent_row)
            np.testing.assert_array_equal(
                tb["ta_id"][children],
                np.full(len(children), ta["id"][parent_row]),
            )

    def test_forest_specs_and_batches(self, synthetic_setup):
        db, dataset, encoders, _ = synthetic_setup
        walks = fan_out_relations(
            dataset.incomplete, dataset.annotation,
            CompletionPath(("ta", "tb")),
        )
        assert ("ta", "tb") in walks
        forest = EvidenceForest(dataset.incomplete, "ta", walks, encoders,
                                self_evidence_table="tb")
        specs = forest.specs()
        assert [s.name for s in specs] == ["ta/tb"]
        batch = forest.batch_for_roots(np.array([0, 1, 2]))
        assert "ta/tb" in batch
        assert batch["ta/tb"].parent_ids.max(initial=-1) < 3

    def test_leave_one_out_excludes_target(self, synthetic_setup):
        db, dataset, encoders, _ = synthetic_setup
        walks = fan_out_relations(
            dataset.incomplete, dataset.annotation, CompletionPath(("ta", "tb")),
        )
        forest = EvidenceForest(dataset.incomplete, "ta", walks, encoders,
                                self_evidence_table="tb")
        fk = dataset.incomplete.fk_between("tb", "ta")
        index = build_child_index(dataset.incomplete, fk)
        # Pick a parent with at least 2 children.
        parent = next(p for p in range(len(dataset.incomplete.table("ta")))
                      if len(index.children_of(p)) >= 2)
        child = int(index.children_of(parent)[0])
        with_loo = forest.batch_for_roots(np.array([parent]),
                                          exclude_target_rows=np.array([child]))
        without = forest.batch_for_roots(np.array([parent]))
        assert with_loo["ta/tb"].num_rows == without["ta/tb"].num_rows - 1


class TestSSARModel:
    def test_fit_and_context(self, synthetic_setup):
        db, dataset, encoders, layout = synthetic_setup
        walks = fan_out_relations(
            dataset.incomplete, dataset.annotation, CompletionPath(("ta", "tb")),
        )
        forest = EvidenceForest(dataset.incomplete, "ta", walks, encoders,
                                self_evidence_table="tb")
        model = SSARCompletionModel(layout, forest, ModelConfig(
            hidden=(32, 32), train=FAST))
        model.fit()
        ctx = model.context_for_roots(np.array([0, 1]))
        assert ctx.shape == (2, model.tree_encoder.context_dim)

    def test_requires_walks(self, synthetic_setup):
        db, dataset, encoders, layout = synthetic_setup
        empty = EvidenceForest(dataset.incomplete, "ta", [], encoders)
        with pytest.raises(ValueError):
            SSARCompletionModel(layout, empty)


class TestNNReplacement:
    def test_exact_replacement_finds_identical(self, housing_mini):
        table = housing_mini.table("apartment")
        replacer = EuclideanReplacer(table, approximate=False)
        cols = {c: table[c][:2] for c in replacer.space.columns}
        rows = replacer.replace(cols)
        np.testing.assert_array_equal(rows, [0, 1])

    def test_replacement_values_include_keys(self, housing_mini):
        table = housing_mini.table("landlord")
        replacer = EuclideanReplacer(table, approximate=False)
        values = replacer.replacement_values({"age": np.array([59.2])})
        assert values["id"][0] == 3  # landlord with age 59

    def test_approximate_mode_close_to_exact(self):
        rng = np.random.default_rng(0)
        from repro.relational import ColumnKind, Table
        table = Table(
            "t",
            {"id": np.arange(500), "x": rng.normal(size=500),
             "y": rng.normal(size=500)},
            {"id": ColumnKind.KEY, "x": ColumnKind.CONTINUOUS,
             "y": ColumnKind.CONTINUOUS},
        )
        exact = EuclideanReplacer(table, approximate=False)
        approx = EuclideanReplacer(table, approximate=True, projection_dim=2)
        queries = {"x": rng.normal(size=50), "y": rng.normal(size=50)}
        rows_exact = exact.replace(queries)
        rows_approx = approx.replace(queries)
        # Approximate answers must at least be valid rows; with only 2 true
        # dims the projection preserves most neighbours.
        agree = (rows_exact == rows_approx).mean()
        assert agree > 0.3

    def test_tuple_space_onehot_distance(self, housing_mini):
        space = TupleSpace(housing_mini.table("apartment"))
        a = space.transform({"rent": [2000.0], "room_type": ["entire"],
                             "neighborhood_id": [1], "landlord_id": [1]}
                            if False else
                            {c: housing_mini.table("apartment")[c][:1]
                             for c in space.columns})
        assert a.shape[0] == 1
        assert a.shape[1] == space.dim
