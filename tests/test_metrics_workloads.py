"""Tests for evaluation metrics, workload definitions and experiment helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    bias_reduction,
    cardinality_correction,
    categorical_fraction,
    relative_error,
    relative_error_improvement,
    weighted_average,
)
from repro.query import QueryResult
from repro.workloads import (
    ALL_SETUPS,
    HOUSING_SETUPS,
    MOVIES_SETUPS,
    base_database,
    queries_for,
)


class TestRelativeError:
    def test_scalar(self):
        est = QueryResult({(): 90.0})
        truth = QueryResult({(): 100.0})
        assert relative_error(est, truth) == pytest.approx(0.1)

    def test_group_average(self):
        est = QueryResult({("a",): 90.0, ("b",): 110.0})
        truth = QueryResult({("a",): 100.0, ("b",): 100.0})
        assert relative_error(est, truth) == pytest.approx(0.1)

    def test_missing_group_counts_as_one(self):
        est = QueryResult({("a",): 100.0})
        truth = QueryResult({("a",): 100.0, ("b",): 50.0})
        assert relative_error(est, truth) == pytest.approx(0.5)

    def test_zero_truth_guard(self):
        est = QueryResult({(): 0.0})
        truth = QueryResult({(): 0.0})
        assert relative_error(est, truth) == 0.0
        est2 = QueryResult({(): 5.0})
        assert relative_error(est2, truth) == 1.0

    def test_empty_truth(self):
        assert relative_error(QueryResult({}), QueryResult({})) == 0.0
        assert relative_error(QueryResult({(): 1.0}), QueryResult({})) == 1.0

    def test_improvement_sign(self):
        truth = QueryResult({(): 100.0})
        incomplete = QueryResult({(): 50.0})
        completed = QueryResult({(): 90.0})
        assert relative_error_improvement(incomplete, completed, truth) > 0
        assert relative_error_improvement(completed, incomplete, truth) < 0

    @settings(max_examples=30, deadline=None)
    @given(st.floats(1, 1000), st.floats(-1000, 1000))
    def test_error_nonnegative(self, truth_value, est_value):
        err = relative_error(QueryResult({(): est_value}),
                             QueryResult({(): truth_value}))
        assert err >= 0


class TestBiasReduction:
    def test_perfect_completion(self):
        assert bias_reduction(100.0, 50.0, 100.0) == pytest.approx(1.0)

    def test_no_improvement(self):
        assert bias_reduction(100.0, 50.0, 50.0) == pytest.approx(0.0)

    def test_worse_than_incomplete(self):
        assert bias_reduction(100.0, 50.0, 0.0) < 0

    def test_undefined_when_no_bias(self):
        assert np.isnan(bias_reduction(100.0, 100.0, 90.0))

    def test_cardinality_alias(self):
        assert cardinality_correction(1000, 500, 950) == pytest.approx(0.9)

    @settings(max_examples=30, deadline=None)
    @given(st.floats(10, 100), st.floats(110, 200))
    def test_bounded_above_by_one(self, completed, truth):
        incomplete = 50.0
        assert bias_reduction(truth, incomplete, completed) <= 1.0 + 1e-12


class TestWeightedStats:
    def test_weighted_average(self):
        assert weighted_average(np.array([1.0, 3.0]),
                                np.array([3.0, 1.0])) == pytest.approx(1.5)

    def test_unweighted_default(self):
        assert weighted_average(np.array([1.0, 3.0])) == pytest.approx(2.0)

    def test_categorical_fraction(self):
        vals = np.array(["a", "b", "a"], dtype=object)
        assert categorical_fraction(vals, "a") == pytest.approx(2 / 3)
        assert categorical_fraction(vals, "a",
                                    np.array([0.0, 1.0, 1.0])) == pytest.approx(0.5)

    def test_empty_inputs(self):
        assert np.isnan(weighted_average(np.array([])))
        assert np.isnan(categorical_fraction(np.array([]), "a"))
        assert np.isnan(categorical_fraction(np.array(["a"]), "a", np.array([0.0])))


class TestWorkloads:
    def test_setup_inventory_matches_fig4c(self):
        assert set(HOUSING_SETUPS) == {"H1", "H2", "H3", "H4", "H5"}
        assert set(MOVIES_SETUPS) == {"M1", "M2", "M3", "M4", "M5"}
        assert len(ALL_SETUPS) == 10

    def test_biased_attributes_match_paper(self):
        assert ALL_SETUPS["H1"].biased_attribute == "price"
        assert ALL_SETUPS["H2"].biased_attribute == "room_type"
        assert ALL_SETUPS["M1"].biased_attribute == "production_year"
        assert ALL_SETUPS["M5"].biased_attribute == "country_code"

    def test_tf_keep_rates_match_paper(self):
        assert all(s.tf_keep_rate == 0.3 for s in HOUSING_SETUPS.values())
        assert all(s.tf_keep_rate == 0.2 for s in MOVIES_SETUPS.values())

    def test_m45_remove_extra_movies(self):
        assert ALL_SETUPS["M4"].extra_removals
        assert ALL_SETUPS["M4"].extra_removals[0].table == "movie"
        assert not ALL_SETUPS["M1"].extra_removals

    def test_queries_parse_and_reference_real_columns(self):
        for dataset in ("housing", "movies"):
            db = base_database(dataset, scale=0.2)
            for name, (setup, query) in queries_for(dataset).items():
                assert setup in ALL_SETUPS
                for table in query.tables:
                    assert table in db.tables, f"{dataset} {name}: {table}"
                columns = {
                    f"{t}.{c}" for t in query.tables
                    for c in db.table(t).column_names
                }
                bare = {c.split(".")[-1] for c in columns}
                for col in query.columns_referenced():
                    assert col.split(".")[-1] in bare, f"{dataset} {name}: {col}"

    def test_setup_make_produces_incomplete(self):
        db = base_database("movies", scale=0.2)
        dataset = ALL_SETUPS["M5"].make(db, 0.5, 0.4, seed=0)
        assert not dataset.annotation.is_complete("company")
        assert not dataset.annotation.is_complete("movie")  # M5 extra removal
        # Dangling company references survive (evidence of missing tuples).
        refs = dataset.incomplete.table("movie_company")["company_id"]
        keys = set(dataset.incomplete.table("company")["id"].tolist())
        assert any(r not in keys for r in refs.tolist())

    def test_unknown_dataset(self):
        with pytest.raises(ValueError):
            base_database("bogus")


class TestExperimentHelpers:
    def test_biased_value_is_mode(self):
        from repro.experiments import biased_value_of
        db = base_database("housing", scale=0.2)
        value = biased_value_of(db, "apartment", "room_type")
        values, counts = np.unique(db.table("apartment")["room_type"],
                                   return_counts=True)
        assert value == values[counts.argmax()]

    def test_experiment_config_env(self, monkeypatch):
        from repro.experiments import ExperimentConfig, full_grid
        monkeypatch.delenv("RESTORE_BENCH_FULL", raising=False)
        assert not full_grid()
        cfg = ExperimentConfig.default()
        assert cfg.scale < 1.0
        monkeypatch.setenv("RESTORE_BENCH_FULL", "1")
        assert full_grid()
        assert ExperimentConfig.default().scale == 1.0

    def test_run_setup_cell_end_to_end(self):
        from repro.experiments import ExperimentConfig, evaluate_candidates, run_setup_cell
        cfg = ExperimentConfig(keep_rates=(0.5,), removal_correlations=(0.3,),
                               scale=0.25, epochs=4)
        setup = ALL_SETUPS["H1"]
        engine, dataset = run_setup_cell(setup, 0.5, 0.3, cfg)
        evals = evaluate_candidates(engine, dataset, setup, 0.5, 0.3)
        assert evals
        for evaluation in evals:
            assert evaluation.setup == "H1"
            assert not np.isnan(evaluation.completed_statistic)
