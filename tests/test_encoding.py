"""Tests for column codecs and the table encoder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding import (
    CategoricalCodec,
    ContinuousCodec,
    TableEncoder,
    TupleFactorCodec,
)
from repro.relational import ColumnKind, Table
from repro.relational.tuple_factors import TF_UNKNOWN


class TestCategoricalCodec:
    def test_roundtrip(self):
        codec = CategoricalCodec().fit(["b", "a", "b", "c"])
        codes = codec.encode(["a", "b", "c"])
        decoded = codec.decode(codes)
        np.testing.assert_array_equal(decoded, ["a", "b", "c"])

    def test_vocab_includes_unk(self):
        codec = CategoricalCodec().fit(["a", "b"])
        assert codec.vocab_size == 3

    def test_unseen_maps_to_unk(self):
        codec = CategoricalCodec().fit(["a", "b"])
        codes = codec.encode(["a", "zzz"])
        assert codes[0] != CategoricalCodec.UNK
        assert codes[1] == CategoricalCodec.UNK

    def test_unk_decodes_to_known_value(self):
        codec = CategoricalCodec().fit(["a", "b"])
        decoded = codec.decode(np.array([0, 0]), rng=np.random.default_rng(0))
        assert set(decoded) <= {"a", "b"}

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            CategoricalCodec().encode(["a"])
        with pytest.raises(RuntimeError):
            _ = CategoricalCodec().vocab_size

    def test_integer_categories(self):
        codec = CategoricalCodec().fit([3, 1, 2])
        np.testing.assert_array_equal(codec.decode(codec.encode([1, 3])), [1, 3])

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.sampled_from("abcde"), min_size=1, max_size=30))
    def test_roundtrip_property(self, values):
        codec = CategoricalCodec().fit(values)
        decoded = codec.decode(codec.encode(values))
        np.testing.assert_array_equal(decoded, np.asarray(values))


class TestContinuousCodec:
    def test_bin_count_bounded(self):
        rng = np.random.default_rng(0)
        codec = ContinuousCodec(num_bins=8).fit(rng.normal(size=500))
        assert 2 <= codec.vocab_size <= 8

    def test_encode_within_vocab(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=300)
        codec = ContinuousCodec(num_bins=16).fit(data)
        codes = codec.encode(data)
        assert codes.min() >= 0 and codes.max() < codec.vocab_size

    def test_out_of_range_clipped(self):
        codec = ContinuousCodec(num_bins=4).fit(np.linspace(0, 1, 100))
        codes = codec.encode([-100.0, 100.0])
        assert codes[0] == 0
        assert codes[1] == codec.vocab_size - 1

    def test_decode_mean_mode(self):
        data = np.concatenate([np.zeros(50), np.ones(50)])
        codec = ContinuousCodec(num_bins=2).fit(data)
        decoded = codec.decode(codec.encode([0.0, 1.0]), dequantize=False)
        np.testing.assert_allclose(decoded, [0.0, 1.0], atol=0.01)

    def test_dequantize_stays_in_bin(self):
        rng = np.random.default_rng(2)
        data = rng.uniform(0, 10, size=400)
        codec = ContinuousCodec(num_bins=8).fit(data)
        codes = codec.encode(data)
        decoded = codec.decode(codes, rng=np.random.default_rng(3))
        recoded = codec.encode(decoded)
        # Dequantized values land back in their own bin.
        assert (recoded == codes).mean() > 0.99

    def test_constant_column(self):
        codec = ContinuousCodec(num_bins=8).fit(np.full(10, 5.0))
        assert codec.vocab_size == 1
        decoded = codec.decode(codec.encode([5.0]), dequantize=False)
        np.testing.assert_allclose(decoded, [5.0], atol=1e-6)

    def test_empty_fit_raises(self):
        with pytest.raises(ValueError):
            ContinuousCodec().fit([])

    def test_too_few_bins_rejected(self):
        with pytest.raises(ValueError):
            ContinuousCodec(num_bins=1)

    def test_quantile_bins_balance_mass(self):
        rng = np.random.default_rng(4)
        data = np.exp(rng.normal(size=2000))  # heavily skewed
        codec = ContinuousCodec(num_bins=10).fit(data)
        codes = codec.encode(data)
        counts = np.bincount(codes, minlength=codec.vocab_size)
        # Quantile binning keeps bins within ~3x of each other.
        assert counts.max() < 3 * max(counts.min(), 1)

    def test_mean_preserved_approximately(self):
        rng = np.random.default_rng(5)
        data = rng.gamma(2.0, 3.0, size=3000)
        codec = ContinuousCodec(num_bins=32).fit(data)
        decoded = codec.decode(codec.encode(data), dequantize=False)
        assert abs(decoded.mean() - data.mean()) / data.mean() < 0.02


class TestTupleFactorCodec:
    def test_roundtrip_known(self):
        codec = TupleFactorCodec(cap=5)
        tfs = np.array([0, 3, 5])
        np.testing.assert_array_equal(codec.decode(codec.encode(tfs)), tfs)

    def test_cap_clips(self):
        codec = TupleFactorCodec(cap=5)
        assert codec.encode([99])[0] == 5

    def test_unknown_roundtrip(self):
        codec = TupleFactorCodec(cap=5)
        codes = codec.encode([TF_UNKNOWN, 2])
        assert codes[0] == codec.unknown_code
        decoded = codec.decode(codes)
        assert decoded[0] == TF_UNKNOWN and decoded[1] == 2

    def test_sampling_mask(self):
        codec = TupleFactorCodec(cap=3)
        mask = codec.sampling_mask()
        assert mask.sum() == codec.vocab_size - 1
        assert not mask[codec.unknown_code]

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            TupleFactorCodec(cap=0)


class TestTableEncoder:
    def make_table(self):
        return Table(
            "t",
            {
                "id": [1, 2, 3, 4],
                "color": ["r", "g", "r", "b"],
                "size": [1.0, 2.0, 3.0, 4.0],
            },
            {"id": ColumnKind.KEY, "color": ColumnKind.CATEGORICAL,
             "size": ColumnKind.CONTINUOUS},
        )

    def test_keys_excluded(self):
        enc = TableEncoder(self.make_table())
        assert enc.columns == ["color", "size"]

    def test_encode_decode_shapes(self):
        table = self.make_table()
        enc = TableEncoder(table, num_bins=4)
        codes = enc.encode_table(table)
        assert codes.shape == (4, 2)
        decoded = enc.decode_codes(codes, rng=np.random.default_rng(0))
        assert set(decoded) == {"color", "size"}
        np.testing.assert_array_equal(decoded["color"], table["color"])

    def test_vocab_sizes_align(self):
        enc = TableEncoder(self.make_table(), num_bins=4)
        sizes = enc.vocab_sizes()
        assert len(sizes) == 2
        assert sizes[0] == 4  # three colors + unk

    def test_decode_wrong_shape(self):
        enc = TableEncoder(self.make_table())
        with pytest.raises(ValueError):
            enc.decode_codes(np.zeros((2, 5), dtype=int))

    def test_unknown_column(self):
        enc = TableEncoder(self.make_table())
        with pytest.raises(KeyError):
            enc.codec("ghost")

    def test_encode_columns_dict(self):
        table = self.make_table()
        enc = TableEncoder(table)
        codes = enc.encode_columns({"color": ["g"], "size": [2.5]})
        assert codes.shape == (1, 2)

    def test_keys_only_table(self):
        t = Table("link", {"a": [1], "b": [2]},
                  {"a": ColumnKind.KEY, "b": ColumnKind.KEY}, primary_key=None)
        enc = TableEncoder(t)
        assert enc.columns == []
        codes = enc.encode_table(t)
        assert codes.shape == (1, 0)
