"""Tests for differentiable functional ops (embedding, segment_sum, CE)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor
from repro.nn import functional as F

from helpers import numeric_grad


class TestEmbedding:
    def test_forward_gather(self):
        w = Tensor(np.arange(8.0).reshape(4, 2), requires_grad=True)
        out = F.embedding(w, np.array([2, 0]))
        np.testing.assert_allclose(out.numpy(), [[4.0, 5.0], [0.0, 1.0]])

    def test_grad_scatter_adds_duplicates(self):
        w = Tensor(np.zeros((3, 2)), requires_grad=True)
        out = F.embedding(w, np.array([1, 1, 2]))
        out.sum().backward()
        np.testing.assert_allclose(w.grad, [[0, 0], [2, 2], [1, 1]])

    def test_2d_indices(self):
        w = Tensor(np.arange(6.0).reshape(3, 2), requires_grad=True)
        out = F.embedding(w, np.array([[0, 1], [2, 0]]))
        assert out.shape == (2, 2, 2)
        out.sum().backward()
        np.testing.assert_allclose(w.grad, [[2, 2], [1, 1], [1, 1]])

    def test_finite_difference(self):
        rng = np.random.default_rng(0)
        w0 = rng.normal(size=(4, 3))
        idx = np.array([0, 3, 3, 1])

        def loss(arr):
            return (F.embedding(Tensor(arr), idx) ** 2.0).sum()

        w = Tensor(np.array(w0, copy=True), requires_grad=True)
        (F.embedding(w, idx) ** 2.0).sum().backward()
        expected = numeric_grad(lambda a: loss(a).item(), np.array(w0, copy=True))
        np.testing.assert_allclose(w.grad, expected, atol=1e-5)


class TestSegmentSum:
    def test_forward(self):
        vals = Tensor(np.array([[1.0], [2.0], [3.0]]))
        out = F.segment_sum(vals, np.array([0, 0, 2]), num_segments=3)
        np.testing.assert_allclose(out.numpy(), [[3.0], [0.0], [3.0]])

    def test_empty_segments_are_zero(self):
        vals = Tensor(np.zeros((0, 4)))
        out = F.segment_sum(vals, np.zeros(0, dtype=int), num_segments=2)
        np.testing.assert_allclose(out.numpy(), np.zeros((2, 4)))

    def test_grad_routes_to_rows(self):
        vals = Tensor(np.ones((3, 2)), requires_grad=True)
        out = F.segment_sum(vals, np.array([1, 1, 0]), num_segments=2)
        (out * np.array([[1.0, 1.0], [5.0, 5.0]])).sum().backward()
        np.testing.assert_allclose(vals.grad, [[5, 5], [5, 5], [1, 1]])

    def test_misaligned_ids_raise(self):
        with pytest.raises(ValueError):
            F.segment_sum(Tensor(np.ones((3, 1))), np.array([0, 1]), 2)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 20), st.integers(1, 5))
    def test_total_mass_preserved(self, rows, segments):
        rng = np.random.default_rng(rows * 31 + segments)
        vals = rng.normal(size=(rows, 3))
        ids = rng.integers(0, segments, size=rows)
        out = F.segment_sum(Tensor(vals), ids, segments)
        np.testing.assert_allclose(out.numpy().sum(axis=0), vals.sum(axis=0), atol=1e-9)


class TestLogSoftmaxCrossEntropy:
    def test_log_softmax_rows_normalize(self):
        rng = np.random.default_rng(1)
        logits = rng.normal(size=(5, 4))
        out = F.log_softmax(Tensor(logits))
        np.testing.assert_allclose(np.exp(out.numpy()).sum(axis=1), np.ones(5), atol=1e-9)

    def test_log_softmax_stability(self):
        out = F.log_softmax(Tensor(np.array([[1000.0, 1000.0]])))
        np.testing.assert_allclose(out.numpy(), [[np.log(0.5)] * 2], atol=1e-9)

    def test_log_softmax_grad(self):
        rng = np.random.default_rng(2)
        x0 = rng.normal(size=(3, 4))

        def loss(arr):
            return (F.log_softmax(Tensor(arr)) * np.arange(12.0).reshape(3, 4)).sum()

        t = Tensor(np.array(x0, copy=True), requires_grad=True)
        (F.log_softmax(t) * np.arange(12.0).reshape(3, 4)).sum().backward()
        expected = numeric_grad(lambda a: loss(a).item(), np.array(x0, copy=True))
        np.testing.assert_allclose(t.grad, expected, atol=1e-5)

    def test_cross_entropy_matches_manual(self):
        logits = np.array([[2.0, 0.0], [0.0, 2.0]])
        targets = np.array([0, 0])
        loss = F.cross_entropy(Tensor(logits), targets)
        manual = -(np.log(np.exp(2) / (np.exp(2) + 1)) + np.log(1 / (1 + np.exp(2)))) / 2
        np.testing.assert_allclose(loss.item(), manual, atol=1e-9)

    def test_cross_entropy_grad(self):
        rng = np.random.default_rng(3)
        x0 = rng.normal(size=(4, 3))
        targets = np.array([0, 1, 2, 1])

        t = Tensor(np.array(x0, copy=True), requires_grad=True)
        F.cross_entropy(t, targets).backward()
        expected = numeric_grad(
            lambda a: F.cross_entropy(Tensor(a), targets).item(), np.array(x0, copy=True)
        )
        np.testing.assert_allclose(t.grad, expected, atol=1e-5)

    def test_weighted_cross_entropy(self):
        logits = np.array([[1.0, 0.0], [1.0, 0.0]])
        targets = np.array([0, 1])
        heavy_first = F.cross_entropy(Tensor(logits), targets, np.array([10.0, 0.1]))
        heavy_second = F.cross_entropy(Tensor(logits), targets, np.array([0.1, 10.0]))
        # class 0 has the larger logit, so weighting the correct row less
        # increases the loss.
        assert heavy_first.item() < heavy_second.item()

    def test_zero_weight_sum_raises(self):
        with pytest.raises(ValueError):
            F.cross_entropy(Tensor(np.zeros((2, 2))), np.array([0, 1]), np.zeros(2))

    def test_nll_from_logits_matches_cross_entropy(self):
        rng = np.random.default_rng(4)
        logits = rng.normal(size=(6, 5))
        targets = rng.integers(0, 5, size=6)
        per_row = F.nll_from_logits(logits, targets)
        ce = F.cross_entropy(Tensor(logits), targets).item()
        np.testing.assert_allclose(per_row.mean(), ce, atol=1e-9)
