"""Tests for the SPJA query engine: joins, filters, aggregation, SQL parsing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query import (
    Aggregate,
    AggregateKind,
    Filter,
    FilterOp,
    JoinResult,
    Query,
    SQLSyntaxError,
    available_columns,
    execute,
    execute_on_join,
    join_tables,
    parse_query,
    validate_query_columns,
)


class TestJoin:
    def test_n_to_1_join(self, housing_mini):
        joined = join_tables(housing_mini, ["apartment", "neighborhood"])
        assert joined.num_rows == 5
        # Every apartment row pairs with its neighborhood's state.
        states = joined.resolve("neighborhood.state")
        assert list(states) == ["NYC", "NYC", "CA", "CA", "CA"]

    def test_1_to_n_join(self, housing_mini):
        joined = join_tables(housing_mini, ["neighborhood", "apartment"])
        assert joined.num_rows == 5

    def test_three_way_join(self, housing_mini):
        joined = join_tables(housing_mini, ["neighborhood", "apartment", "landlord"])
        assert joined.num_rows == 5
        ages = joined.resolve("landlord.age")
        np.testing.assert_allclose(sorted(ages), [50.0, 59.0, 59.0, 60.0, 60.0])

    def test_chain_join(self, star_db):
        joined = join_tables(star_db, ["state", "neighborhood", "apartment"])
        assert joined.num_rows == 2
        regions = set(joined.resolve("state.region"))
        assert regions == {"east", "west"}

    def test_missing_key_sentinel_drops_rows(self, housing_mini):
        apt = housing_mini.table("apartment").with_column(
            "landlord_id", [1, -1, 2, -1, 3],
            housing_mini.table("apartment").meta("landlord_id").kind,
        )
        db = housing_mini.replace_table(apt)
        joined = join_tables(db, ["apartment", "landlord"])
        assert joined.num_rows == 3

    def test_dangling_child_dropped(self, housing_mini):
        apt = housing_mini.table("apartment").with_column(
            "neighborhood_id", [1, 1, 2, 2, 42],
            housing_mini.table("apartment").meta("neighborhood_id").kind,
        )
        db = housing_mini.replace_table(apt)
        joined = join_tables(db, ["apartment", "neighborhood"])
        assert joined.num_rows == 4


class TestJoinResult:
    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            JoinResult({"a.x": np.zeros(2), "a.y": np.zeros(3)})

    def test_weight_alignment(self):
        with pytest.raises(ValueError):
            JoinResult({"a.x": np.zeros(2)}, weights=np.ones(3))

    def test_resolve_qualified_and_bare(self):
        jr = JoinResult({"t.x": np.array([1.0]), "u.y": np.array([2.0])})
        np.testing.assert_allclose(jr.resolve("t.x"), [1.0])
        np.testing.assert_allclose(jr.resolve("y"), [2.0])

    def test_resolve_ambiguous(self):
        jr = JoinResult({"t.x": np.array([1.0]), "u.x": np.array([2.0])})
        with pytest.raises(KeyError):
            jr.resolve("x")

    def test_resolve_missing(self):
        jr = JoinResult({"t.x": np.array([1.0])})
        with pytest.raises(KeyError):
            jr.resolve("nope")

    def test_select_carries_weights(self):
        jr = JoinResult({"t.x": np.arange(3.0)}, weights=np.array([1.0, 2.0, 3.0]))
        sub = jr.select(np.array([True, False, True]))
        np.testing.assert_allclose(sub.weights, [1.0, 3.0])


class TestAggregation:
    def test_count_avg_sum(self, housing_mini):
        q_count = Query(("apartment",), Aggregate(AggregateKind.COUNT))
        q_sum = Query(("apartment",), Aggregate(AggregateKind.SUM, "rent"))
        q_avg = Query(("apartment",), Aggregate(AggregateKind.AVG, "rent"))
        assert execute(housing_mini, q_count).scalar == 5
        assert execute(housing_mini, q_sum).scalar == pytest.approx(11200.0)
        assert execute(housing_mini, q_avg).scalar == pytest.approx(2240.0)

    def test_group_by(self, housing_mini):
        q = Query(("neighborhood", "apartment"),
                  Aggregate(AggregateKind.AVG, "rent"), group_by=("state",))
        result = execute(housing_mini, q)
        assert result[("NYC",)] == pytest.approx(2500.0)
        assert result[("CA",)] == pytest.approx(6200.0 / 3)

    def test_multi_group_by(self, housing_mini):
        q = Query(("neighborhood", "apartment"),
                  Aggregate(AggregateKind.COUNT),
                  group_by=("state", "room_type"))
        result = execute(housing_mini, q)
        assert result[("NYC", "entire")] == 1
        assert result[("CA", "private")] == 2

    def test_filters(self, housing_mini):
        q = Query(("apartment",), Aggregate(AggregateKind.COUNT),
                  filters=(Filter("room_type", FilterOp.EQ, "private"),))
        assert execute(housing_mini, q).scalar == 3

    def test_numeric_filters(self, housing_mini):
        q = Query(("apartment",), Aggregate(AggregateKind.COUNT),
                  filters=(Filter("rent", FilterOp.GE, 2000.0),
                           Filter("rent", FilterOp.LT, 3200.0)))
        assert execute(housing_mini, q).scalar == 3

    def test_in_filter(self, housing_mini):
        q = Query(("neighborhood",), Aggregate(AggregateKind.COUNT),
                  filters=(Filter("state", FilterOp.IN, ("NYC", "TX")),))
        assert execute(housing_mini, q).scalar == 1

    def test_ne_filter(self, housing_mini):
        q = Query(("apartment",), Aggregate(AggregateKind.COUNT),
                  filters=(Filter("room_type", FilterOp.NE, "private"),))
        assert execute(housing_mini, q).scalar == 2

    def test_weighted_aggregation(self):
        jr = JoinResult({"t.x": np.array([10.0, 20.0])}, weights=np.array([3.0, 1.0]))
        q_count = Query(("t",), Aggregate(AggregateKind.COUNT))
        q_avg = Query(("t",), Aggregate(AggregateKind.AVG, "x"))
        q_sum = Query(("t",), Aggregate(AggregateKind.SUM, "x"))
        assert execute_on_join(jr, q_count).scalar == 4.0
        assert execute_on_join(jr, q_avg).scalar == pytest.approx(12.5)
        assert execute_on_join(jr, q_sum).scalar == pytest.approx(50.0)

    def test_empty_group_dropped(self):
        jr = JoinResult({"t.g": np.array(["a", "b"]), "t.x": np.array([1.0, 2.0])},
                        weights=np.array([1.0, 0.0]))
        q = Query(("t",), Aggregate(AggregateKind.COUNT), group_by=("g",))
        result = execute_on_join(jr, q)
        assert ("b",) not in result.values

    def test_scalar_on_grouped_raises(self, housing_mini):
        q = Query(("neighborhood",), Aggregate(AggregateKind.COUNT),
                  group_by=("state",))
        result = execute(housing_mini, q)
        with pytest.raises(ValueError):
            _ = result.scalar

    def test_avg_empty_is_nan(self):
        jr = JoinResult({"t.x": np.array([], dtype=float)})
        q = Query(("t",), Aggregate(AggregateKind.AVG, "x"))
        assert np.isnan(execute_on_join(jr, q).scalar)


class TestQueryAST:
    def test_needs_tables(self):
        with pytest.raises(ValueError):
            Query((), Aggregate(AggregateKind.COUNT))

    def test_rejects_self_join(self):
        with pytest.raises(ValueError):
            Query(("t", "t"), Aggregate(AggregateKind.COUNT))

    def test_sum_needs_column(self):
        with pytest.raises(ValueError):
            Aggregate(AggregateKind.SUM)

    def test_in_needs_tuple(self):
        with pytest.raises(ValueError):
            Filter("x", FilterOp.IN, "single")

    def test_str_roundtrips_through_parser(self, housing_mini):
        q = Query(("neighborhood", "apartment"),
                  Aggregate(AggregateKind.AVG, "rent"),
                  filters=(Filter("room_type", FilterOp.EQ, "entire"),),
                  group_by=("state",))
        reparsed = parse_query(str(q))
        assert reparsed == q


class TestSQLParser:
    def test_count_star(self):
        q = parse_query("SELECT COUNT(*) FROM apartment;")
        assert q.aggregate.kind is AggregateKind.COUNT
        assert q.aggregate.column is None
        assert q.tables == ("apartment",)

    def test_full_query(self):
        q = parse_query(
            "SELECT AVG(price) FROM landlord NATURAL JOIN apartment "
            "WHERE room_type = 'Entire home/apt' AND landlord_since >= 2011 "
            "GROUP BY state, room_type;"
        )
        assert q.tables == ("landlord", "apartment")
        assert q.filters == (
            Filter("room_type", FilterOp.EQ, "Entire home/apt"),
            Filter("landlord_since", FilterOp.GE, 2011),
        )
        assert q.group_by == ("state", "room_type")

    def test_in_list(self):
        q = parse_query("SELECT COUNT(*) FROM t WHERE g IN ('a', 'b');")
        assert q.filters[0].op is FilterOp.IN
        assert q.filters[0].value == ("a", "b")

    def test_float_literal(self):
        q = parse_query("SELECT COUNT(*) FROM t WHERE x < 2.5;")
        assert q.filters[0].value == 2.5

    def test_negative_literal(self):
        q = parse_query("SELECT COUNT(*) FROM t WHERE x >= -3;")
        assert q.filters[0].value == -3

    def test_syntax_errors(self):
        for bad in [
            "SELECT FROM t",
            "SELECT MEDIAN(x) FROM t",
            "SELECT COUNT(*) FROM t WHERE x LIKE 'a'",
            "SELECT COUNT(*) FROM t GROUP x",
            "SELECT COUNT(*)",
            "SELECT COUNT(*) FROM t extra tokens",
        ]:
            with pytest.raises(SQLSyntaxError):
                parse_query(bad)

    def test_executes_end_to_end(self, housing_mini):
        q = parse_query(
            "SELECT AVG(rent) FROM neighborhood NATURAL JOIN apartment "
            "GROUP BY state;"
        )
        result = execute(housing_mini, q)
        assert result[("NYC",)] == pytest.approx(2500.0)


class TestPropertyBased:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(-100, 100), min_size=1, max_size=30),
           st.lists(st.floats(0.01, 5), min_size=1, max_size=30))
    def test_weighted_avg_between_min_max(self, values, weights):
        n = min(len(values), len(weights))
        jr = JoinResult({"t.x": np.array(values[:n])}, weights=np.array(weights[:n]))
        q = Query(("t",), Aggregate(AggregateKind.AVG, "x"))
        avg = execute_on_join(jr, q).scalar
        assert min(values[:n]) - 1e-9 <= avg <= max(values[:n]) + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=40))
    def test_groupby_counts_total(self, groups):
        jr = JoinResult({"t.g": np.array(groups, dtype=object)})
        q = Query(("t",), Aggregate(AggregateKind.COUNT), group_by=("g",))
        result = execute_on_join(jr, q)
        assert sum(result.values.values()) == len(groups)


class TestColumnValidation:
    """validate_query_columns: admission-time checks with clear errors."""

    def test_valid_queries_pass(self, housing_mini):
        validate_query_columns(housing_mini, parse_query(
            "SELECT AVG(rent) FROM apartment NATURAL JOIN neighborhood "
            "WHERE state = 'CA' GROUP BY room_type;"
        ))
        validate_query_columns(housing_mini, parse_query(
            "SELECT AVG(apartment.rent) FROM apartment;"
        ))

    def test_unknown_column_lists_candidates(self, housing_mini):
        query = parse_query("SELECT AVG(price) FROM apartment;")
        with pytest.raises(ValueError) as err:
            validate_query_columns(housing_mini, query)
        message = str(err.value)
        assert "price" in message and "apartment.rent" in message
        assert not isinstance(err.value, KeyError)

    def test_unknown_table_lists_tables(self, housing_mini):
        query = parse_query("SELECT COUNT(*) FROM nowhere;")
        with pytest.raises(ValueError, match="nowhere"):
            validate_query_columns(housing_mini, query)
        with pytest.raises(ValueError, match="apartment"):
            validate_query_columns(housing_mini, query)

    def test_ambiguous_column_requires_qualification(self, housing_mini):
        query = parse_query(
            "SELECT COUNT(*) FROM apartment NATURAL JOIN neighborhood "
            "WHERE id = 1;"
        )
        with pytest.raises(ValueError, match="ambiguous"):
            validate_query_columns(housing_mini, query)

    def test_available_columns_are_qualified(self, housing_mini):
        columns = available_columns(housing_mini, ["neighborhood"])
        assert columns == [
            "neighborhood.id", "neighborhood.state", "neighborhood.pop_density",
        ]
