"""Tests for tables, schemas, tuple factors and schema-graph walks."""

import numpy as np
import pytest

from repro.relational import (
    ColumnKind,
    CompletionPath,
    Database,
    ForeignKey,
    SchemaAnnotation,
    Table,
    TF_UNKNOWN,
    annotated_tuple_factors,
    cap_tuple_factors,
    enumerate_completion_paths,
    fan_out_relations,
    join_order,
    observed_tuple_factors,
    schema_graph,
)

K = ColumnKind.KEY
C = ColumnKind.CATEGORICAL
N = ColumnKind.CONTINUOUS


class TestTable:
    def test_basic_construction(self):
        t = Table("t", {"id": [1, 2], "x": [0.5, 1.5]}, {"id": K, "x": N})
        assert t.num_rows == 2
        assert t.column_names == ["id", "x"]
        np.testing.assert_allclose(t["x"], [0.5, 1.5])

    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            Table("t", {"id": [1, 2], "x": [1.0]}, {"id": K, "x": N})

    def test_missing_kind_rejected(self):
        with pytest.raises(ValueError):
            Table("t", {"id": [1], "x": [1.0]}, {"id": K})

    def test_extra_kind_rejected(self):
        with pytest.raises(ValueError):
            Table("t", {"id": [1]}, {"id": K, "ghost": N})

    def test_missing_pk_rejected(self):
        with pytest.raises(ValueError):
            Table("t", {"x": [1.0]}, {"x": N}, primary_key="id")

    def test_no_pk_allowed(self):
        t = Table("link", {"a_id": [1], "b_id": [2]}, {"a_id": K, "b_id": K},
                  primary_key=None)
        assert t.primary_key is None
        with pytest.raises(ValueError):
            t.key_index()

    def test_take_and_select(self):
        t = Table("t", {"id": [1, 2, 3], "x": [1.0, 2.0, 3.0]}, {"id": K, "x": N})
        taken = t.take(np.array([2, 0, 2]))
        np.testing.assert_allclose(taken["x"], [3.0, 1.0, 3.0])
        selected = t.select(np.array([True, False, True]))
        np.testing.assert_allclose(selected["x"], [1.0, 3.0])

    def test_select_bad_mask(self):
        t = Table("t", {"id": [1, 2]}, {"id": K})
        with pytest.raises(ValueError):
            t.select(np.array([True]))

    def test_project_drops_pk(self):
        t = Table("t", {"id": [1], "x": [1.0]}, {"id": K, "x": N})
        proj = t.project(["x"])
        assert proj.primary_key is None
        assert proj.column_names == ["x"]

    def test_with_column_replaces(self):
        t = Table("t", {"id": [1, 2]}, {"id": K})
        t2 = t.with_column("y", [5.0, 6.0], N)
        assert "y" in t2
        assert "y" not in t

    def test_concat_rows(self):
        a = Table("t", {"id": [1], "x": [1.0]}, {"id": K, "x": N})
        b = Table("t", {"id": [2], "x": [9.0]}, {"id": K, "x": N})
        both = a.concat_rows(b)
        assert both.num_rows == 2
        np.testing.assert_allclose(both["x"], [1.0, 9.0])

    def test_concat_mismatch(self):
        a = Table("t", {"id": [1]}, {"id": K})
        b = Table("t", {"id": [1], "x": [0.0]}, {"id": K, "x": N})
        with pytest.raises(ValueError):
            a.concat_rows(b)

    def test_modelable_columns(self):
        t = Table("t", {"id": [1], "x": [1.0], "c": ["a"]}, {"id": K, "x": N, "c": C})
        assert t.modelable_columns() == ["x", "c"]

    def test_key_index(self):
        t = Table("t", {"id": [7, 3]}, {"id": K})
        assert t.key_index() == {7: 0, 3: 1}

    def test_unknown_column_raises(self):
        t = Table("t", {"id": [1]}, {"id": K})
        with pytest.raises(KeyError):
            t.column("nope")
        with pytest.raises(KeyError):
            t.meta("nope")


class TestDatabase:
    def test_fk_validation(self):
        t = Table("t", {"id": [1]}, {"id": K})
        with pytest.raises(ValueError):
            Database([t], [ForeignKey("t", "id", "ghost")])
        with pytest.raises(ValueError):
            Database([t], [ForeignKey("t", "ghost_col", "t")])

    def test_duplicate_table_rejected(self):
        t = Table("t", {"id": [1]}, {"id": K})
        with pytest.raises(ValueError):
            Database([t, t], [])

    def test_neighbors_and_fk_between(self, housing_mini):
        assert set(housing_mini.neighbors("apartment")) == {"neighborhood", "landlord"}
        fk = housing_mini.fk_between("apartment", "neighborhood")
        assert fk.child_table == "apartment"
        with pytest.raises(ValueError):
            housing_mini.fk_between("neighborhood", "landlord")

    def test_fan_out_direction(self, housing_mini):
        assert housing_mini.is_fan_out_step("neighborhood", "apartment")
        assert not housing_mini.is_fan_out_step("apartment", "neighborhood")

    def test_replace_table(self, housing_mini):
        smaller = housing_mini.table("apartment").head(2)
        db2 = housing_mini.replace_table(smaller)
        assert len(db2.table("apartment")) == 2
        assert len(housing_mini.table("apartment")) == 5

    def test_validate_references(self, housing_mini):
        assert housing_mini.validate_references() == []
        bad_apartment = housing_mini.table("apartment").with_column(
            "neighborhood_id", [1, 1, 2, 2, 99], ColumnKind.KEY
        )
        db2 = housing_mini.replace_table(bad_apartment)
        problems = db2.validate_references()
        assert len(problems) == 1 and "1 dangling" in problems[0]

    def test_sentinel_keys_not_dangling(self, housing_mini):
        apt = housing_mini.table("apartment").with_column(
            "landlord_id", [1, 2, -1, -1, 3], ColumnKind.KEY
        )
        db2 = housing_mini.replace_table(apt)
        assert db2.validate_references() == []


class TestAnnotation:
    def test_overlap_rejected(self):
        with pytest.raises(ValueError):
            SchemaAnnotation(complete_tables={"a"}, incomplete_tables={"a"})

    def test_is_complete(self, housing_mini_annotation):
        assert housing_mini_annotation.is_complete("neighborhood")
        assert not housing_mini_annotation.is_complete("apartment")
        with pytest.raises(KeyError):
            housing_mini_annotation.is_complete("ghost")

    def test_check_covers(self, housing_mini, housing_mini_annotation):
        housing_mini_annotation.check_covers(housing_mini)
        partial = SchemaAnnotation(complete_tables={"landlord"},
                                   incomplete_tables={"apartment"})
        with pytest.raises(ValueError):
            partial.check_covers(housing_mini)

    def test_tuple_factors_for(self, housing_mini):
        fk = housing_mini.fk_between("apartment", "neighborhood")
        ann = SchemaAnnotation(complete_tables={"neighborhood"},
                               incomplete_tables={"apartment"})
        assert ann.tuple_factors_for(fk, 2) is None
        ann.known_tuple_factors[str(fk)] = np.array([2, TF_UNKNOWN])
        np.testing.assert_array_equal(ann.tuple_factors_for(fk, 2), [2, TF_UNKNOWN])
        with pytest.raises(ValueError):
            ann.tuple_factors_for(fk, 3)


class TestTupleFactors:
    def test_observed_counts(self, housing_mini):
        fk = housing_mini.fk_between("apartment", "neighborhood")
        tfs = observed_tuple_factors(housing_mini, fk)
        np.testing.assert_array_equal(tfs, [2, 3])

    def test_zero_for_childless_parent(self, housing_mini):
        fk = housing_mini.fk_between("apartment", "landlord")
        apt = housing_mini.table("apartment").select(
            housing_mini.table("apartment")["landlord_id"] != 1
        )
        db = housing_mini.replace_table(apt)
        tfs = observed_tuple_factors(db, fk)
        np.testing.assert_array_equal(tfs, [0, 2, 2])

    def test_sentinel_children_ignored(self, housing_mini):
        apt = housing_mini.table("apartment").with_column(
            "neighborhood_id", [1, -1, 2, -1, 2], ColumnKind.KEY
        )
        db = housing_mini.replace_table(apt)
        fk = db.fk_between("apartment", "neighborhood")
        np.testing.assert_array_equal(observed_tuple_factors(db, fk), [1, 2])

    def test_annotated_unknowns(self, housing_mini):
        fk = housing_mini.fk_between("apartment", "neighborhood")
        tfs = annotated_tuple_factors(housing_mini, fk, np.array([True, False]))
        np.testing.assert_array_equal(tfs, [2, TF_UNKNOWN])

    def test_cap(self):
        tfs = np.array([0, 5, 12, TF_UNKNOWN])
        capped = cap_tuple_factors(tfs, cap=10)
        np.testing.assert_array_equal(capped, [0, 5, 10, TF_UNKNOWN])
        with pytest.raises(ValueError):
            cap_tuple_factors(tfs, cap=0)


class TestCompletionPaths:
    def test_direct_paths(self, housing_mini, housing_mini_annotation):
        paths = enumerate_completion_paths(housing_mini, housing_mini_annotation,
                                           "apartment")
        path_strs = {str(p) for p in paths}
        assert "landlord -> apartment" in path_strs
        assert "neighborhood -> apartment" in path_strs
        # landlord and neighborhood cannot chain through apartment (it is the
        # target), so only the two direct paths exist.
        assert len(paths) == 2

    def test_chain_path_through_state(self, star_db):
        ann = SchemaAnnotation(
            complete_tables={"state", "neighborhood", "school"},
            incomplete_tables={"apartment"},
        )
        paths = enumerate_completion_paths(star_db, ann, "apartment")
        path_strs = {str(p) for p in paths}
        assert "neighborhood -> apartment" in path_strs
        assert "state -> neighborhood -> apartment" in path_strs
        # Walking outward neighborhood -> school is 1:n (fan-out evidence):
        # schools may only enter through SSAR trees, not the evidence join.
        assert "school -> neighborhood -> apartment" not in path_strs

    def test_interior_fanout_excluded(self, star_db):
        # Every outward step (from the table adjacent to the target toward
        # the path root) must be n:1, i.e. never fan-out.
        ann = SchemaAnnotation(
            complete_tables={"state", "neighborhood", "school"},
            incomplete_tables={"apartment"},
        )
        for path in enumerate_completion_paths(star_db, ann, "apartment"):
            evidence = path.tables[:-1]
            for inner, outer in zip(evidence[::-1][:-1], evidence[::-1][1:]):
                assert not star_db.is_fan_out_step(inner, outer), str(path)

    def test_complete_target_rejected(self, housing_mini, housing_mini_annotation):
        with pytest.raises(ValueError):
            enumerate_completion_paths(housing_mini, housing_mini_annotation,
                                       "neighborhood")

    def test_path_validation(self):
        with pytest.raises(ValueError):
            CompletionPath(("a",))
        with pytest.raises(ValueError):
            CompletionPath(("a", "b", "a"))

    def test_sorted_shortest_first(self, star_db):
        ann = SchemaAnnotation(
            complete_tables={"state", "neighborhood", "school"},
            incomplete_tables={"apartment"},
        )
        paths = enumerate_completion_paths(star_db, ann, "apartment")
        lengths = [p.length for p in paths]
        assert lengths == sorted(lengths)


class TestFanOutRelations:
    def test_school_fanout_for_neighborhood_path(self, star_db):
        ann = SchemaAnnotation(
            complete_tables={"state", "neighborhood", "school"},
            incomplete_tables={"apartment"},
        )
        path = CompletionPath(("neighborhood", "apartment"))
        walks = fan_out_relations(star_db, ann, path)
        assert ("neighborhood", "school") in walks
        # Self-evidence: available apartments of the neighborhood.
        assert ("neighborhood", "apartment") in walks

    def test_self_evidence_toggle(self, star_db):
        ann = SchemaAnnotation(
            complete_tables={"state", "neighborhood", "school"},
            incomplete_tables={"apartment"},
        )
        path = CompletionPath(("neighborhood", "apartment"))
        walks = fan_out_relations(star_db, ann, path, include_self_evidence=False)
        assert ("neighborhood", "apartment") not in walks

    def test_path_tables_excluded(self, star_db):
        ann = SchemaAnnotation(
            complete_tables={"state", "neighborhood", "school"},
            incomplete_tables={"apartment"},
        )
        path = CompletionPath(("state", "neighborhood", "apartment"))
        walks = fan_out_relations(star_db, ann, path)
        # Walks start at state; neighborhood is on the path so its subtree is
        # excluded.
        assert all("neighborhood" not in walk[1:] for walk in walks)


class TestJoinOrder:
    def test_chain(self, star_db):
        order = join_order(star_db, ["state", "neighborhood", "apartment"])
        assert order == [("state", "neighborhood"), ("neighborhood", "apartment")]

    def test_disconnected_raises(self, star_db):
        with pytest.raises(ValueError):
            join_order(star_db, ["state", "apartment"])

    def test_single_table(self, star_db):
        assert join_order(star_db, ["state"]) == []

    def test_schema_graph(self, star_db):
        graph = schema_graph(star_db)
        assert graph.number_of_nodes() == 4
        assert graph.number_of_edges() == 3
