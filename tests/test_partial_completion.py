"""Partial-completion correctness: pushdown, chunk cache, top-up, progressive.

The contracts under test (ISSUE: query-driven partial completion):

* a pushed run answers **bitwise-identically** to full materialization at
  the same seed and chunk grid (counter-based per-row RNG);
* cached partial chunks are invalidated on re-``fit``;
* a full-join request tops up a budgeted partial run and the topped-up
  join is bitwise-identical to a from-scratch full run;
* overlapping-predicate reuse (subset fingerprints) never returns rows
  that fail the stricter predicate;
* progressive refinement converges to the exact answer with non-widening
  confidence bands.
"""

import numpy as np
import pytest

from repro.core import (
    ModelConfig,
    ReStore,
    ReStoreConfig,
    SamplingBudget,
)
from repro.datasets import HousingConfig, generate_housing
from repro.experiments import joins_bitwise_identical
from repro.incomplete import RemovalSpec, make_incomplete
from repro.nn import TrainConfig
from repro.query import parse_query, predicate_mask
from repro.runtime import PartialJoinCache

FAST = TrainConfig(epochs=6, batch_size=128, lr=1e-2, patience=3)


@pytest.fixture(scope="module")
def dataset():
    db = generate_housing(HousingConfig(seed=0, num_neighborhoods=48,
                                        num_landlords=200,
                                        apartments_per_neighborhood=10.0))
    return make_incomplete(db, [RemovalSpec("apartment", "price", 0.5, 0.4)],
                           tf_keep_rate=0.3, seed=1)


def make_engine(dataset) -> ReStore:
    config = ReStoreConfig(model=ModelConfig(hidden=(32, 32), train=FAST),
                           seed=3, chunk_size=8)
    return ReStore.from_dataset(dataset, config).fit()


@pytest.fixture(scope="module")
def engine(dataset) -> ReStore:
    return make_engine(dataset)


@pytest.fixture(scope="module")
def queries(dataset):
    density = dataset.incomplete.table("neighborhood")["pop_density"]
    threshold = float(np.quantile(np.asarray(density, dtype=float), 0.9))
    selective = parse_query(
        "SELECT AVG(apartment.price) "
        "FROM neighborhood NATURAL JOIN apartment "
        f"WHERE neighborhood.pop_density >= {threshold}"
    )
    stricter = parse_query(
        "SELECT AVG(apartment.price) "
        "FROM neighborhood NATURAL JOIN apartment "
        f"WHERE neighborhood.pop_density >= {threshold} "
        "AND apartment.accommodates <= 6"
    )
    full = parse_query(
        "SELECT COUNT(*) FROM neighborhood NATURAL JOIN apartment"
    )
    return selective, stricter, full


class TestPushdownBitwise:
    def test_pushed_equals_full(self, engine, queries):
        selective, _, _ = queries
        engine.clear_cache()
        full = engine.answer(selective)
        engine.clear_cache()
        pushed = engine.answer(selective, pushdown=True)
        assert pushed.pushdown is not None
        assert pushed.pushdown["chunks_walked"] < pushed.pushdown["chunks_total"]
        assert pushed.pushdown["roots_qualifying"] < pushed.pushdown["roots_total"]
        assert pushed.result.scalar == full.result.scalar

    def test_pushed_rows_satisfy_predicates(self, engine, queries):
        selective, _, _ = queries
        engine.clear_cache()
        pushed = engine.answer(selective, pushdown=True)
        joined = pushed.completed.result
        for f in selective.filters:
            mask = predicate_mask(joined.resolve(f.column), f)
            assert mask.all(), f"pushed join kept rows failing {f}"

    def test_cached_full_join_short_circuits(self, engine, queries):
        selective, _, full = queries
        engine.clear_cache()
        engine.answer(full)  # populates the join cache
        answer = engine.answer(selective, pushdown=True)
        # the cached full join is free, so pushdown must not re-walk
        assert answer.from_cache and answer.pushdown is None


class TestChunkReuse:
    def test_repeat_answers_walk_nothing(self, engine, queries):
        selective, _, _ = queries
        engine.clear_cache()
        first = engine.answer(selective, pushdown=True)
        assert first.pushdown["chunks_walked"] > 0
        engine.join_cache.invalidate()  # keep chunks, drop the full join
        second = engine.answer(selective, pushdown=True)
        assert second.pushdown["chunks_walked"] == 0
        assert second.pushdown["chunks_cached"] > 0
        assert second.result.scalar == first.result.scalar

    def test_overlapping_predicates_reuse_and_stay_correct(
        self, dataset, engine, queries
    ):
        _, stricter, _ = queries
        engine.clear_cache()
        loose, _ = queries[0], engine.answer(queries[0], pushdown=True)
        engine.join_cache.invalidate()
        before = engine.partial_cache_stats.subset_hits
        warm = engine.answer(stricter, pushdown=True)
        assert engine.partial_cache_stats.subset_hits > before
        # reused chunks never leak rows that fail the stricter predicate
        joined = warm.completed.result
        for f in stricter.filters:
            assert predicate_mask(joined.resolve(f.column), f).all()
        # and the reassembled join matches a cold pushed run bitwise
        cold_engine = make_engine(dataset)
        cold = cold_engine.answer(stricter, pushdown=True)
        assert joins_bitwise_identical(warm.completed, cold.completed)
        assert warm.result.scalar == cold.result.scalar

    def test_invalidated_on_refit(self, dataset, queries):
        selective, _, _ = queries
        engine = make_engine(dataset)
        engine.answer(selective, pushdown=True)
        assert len(engine.partial_cache) > 0
        engine.fit()
        assert len(engine.partial_cache) == 0
        assert engine.partial_cache_stats.invalidations == 1
        # post-refit pushed answers agree with post-refit full answers
        pushed = engine.answer(selective, pushdown=True)
        engine.join_cache.invalidate()
        engine.partial_cache.invalidate()
        full = engine.answer(selective)
        assert pushed.result.scalar == full.result.scalar


class TestTopUp:
    def test_topup_matches_scratch_run(self, dataset, queries):
        _, _, full_query = queries
        engine = make_engine(dataset)
        # Truncated, unfiltered progressive run: leaves a strict prefix of
        # the canonical grid in the partial cache (empty fingerprints).
        refinements = list(engine.answer_progressive(
            full_query, budget=SamplingBudget(initial_chunks=1, max_chunks=2),
        ))
        assert not refinements[-1].final
        assert len(engine.partial_cache) > 0
        before = engine.partial_cache_stats.hits
        topped = engine.answer(full_query)
        assert engine.partial_cache_stats.hits > before  # reused the prefix

        scratch_engine = make_engine(dataset)
        scratch = scratch_engine.answer(full_query)
        assert joins_bitwise_identical(topped.completed, scratch.completed)
        assert topped.result.scalar == scratch.result.scalar


class TestProgressive:
    def test_converges_to_exact_with_monotone_bands(self, dataset, queries):
        selective, _, _ = queries
        engine = make_engine(dataset)
        exact = engine.answer(selective, pushdown=True)
        engine.clear_cache()
        refinements = list(engine.answer_progressive(
            selective, budget=SamplingBudget(initial_chunks=1),
        ))
        assert refinements[-1].final
        assert refinements[-1].result.scalar == exact.result.scalar
        widths = [r.band.width for r in refinements if r.band is not None]
        assert widths, "AVG over a continuous target column must carry bands"
        assert all(b <= a + 1e-12 for a, b in zip(widths, widths[1:]))
        completed = [r.chunks_completed for r in refinements]
        assert completed == sorted(set(completed))  # strictly increasing

    def test_budget_truncates(self, engine, queries):
        selective, _, _ = queries
        engine.clear_cache()
        refinements = list(engine.answer_progressive(
            selective, budget=SamplingBudget(initial_chunks=1, max_chunks=3),
        ))
        assert refinements[-1].chunks_completed == 3
        assert not refinements[-1].final
        assert refinements[-1].budget_utilization < 1.0

    def test_complete_tables_yield_single_final(self, engine):
        query = parse_query("SELECT COUNT(*) FROM neighborhood")
        [only] = list(engine.answer_progressive(query))
        assert only.final and only.band is None


class TestPartialJoinCacheUnit:
    def test_exact_hit_beats_subset(self):
        cache = PartialJoinCache(capacity=8)
        grid, task = ((0, 4), (4, 8)), (0, 4)
        fps_a = frozenset({("c", ">=", ("1",))})
        fps_ab = fps_a | {("d", "<=", ("2",))}
        cache.put("sig", grid, task, fps_a, "loose")
        cache.put("sig", grid, task, fps_ab, "exact")
        out, got = cache.lookup("sig", grid, task, fps_ab)
        assert out == "exact" and got == fps_ab
        assert cache.stats.subset_hits == 0

    def test_subset_serves_stricter_only(self):
        cache = PartialJoinCache(capacity=8)
        grid, task = ((0, 4),), (0, 4)
        fps_a = frozenset({("c", ">=", ("1",))})
        fps_b = frozenset({("d", "<=", ("2",))})
        cache.put("sig", grid, task, fps_a, "a-chunk")
        # a ⊄ b: different predicate, no reuse
        assert cache.lookup("sig", grid, task, fps_b) is None
        # a ⊂ a∪b: reuse with leftover fingerprints reported
        out, got = cache.lookup("sig", grid, task, fps_a | fps_b)
        assert out == "a-chunk" and got == fps_a
        assert cache.stats.subset_hits == 1
        # never serve a superset (stricter chunk for a looser query)
        assert cache.lookup("sig", grid, task, frozenset()) is None

    def test_largest_subset_wins(self):
        cache = PartialJoinCache(capacity=8)
        grid, task = ((0, 4),), (0, 4)
        f1 = ("c", ">=", ("1",))
        f2 = ("d", "<=", ("2",))
        f3 = ("e", "=", ("3",))
        cache.put("sig", grid, task, frozenset({f1}), "one")
        cache.put("sig", grid, task, frozenset({f1, f2}), "two")
        out, got = cache.lookup("sig", grid, task, frozenset({f1, f2, f3}))
        assert out == "two" and got == frozenset({f1, f2})

    def test_lru_eviction_cleans_index(self):
        cache = PartialJoinCache(capacity=2)
        grid = ((0, 4), (4, 8), (8, 12))
        for i, task in enumerate(grid):
            cache.put("sig", grid, task, frozenset(), f"chunk{i}")
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert cache.lookup("sig", grid, (0, 4), frozenset()) is None
        assert cache.lookup("sig", grid, (8, 12), frozenset())[0] == "chunk2"
        assert cache.has_entries("sig", grid)
        cache.invalidate()
        assert len(cache) == 0 and not cache.has_entries("sig", grid)

    def test_signature_and_grid_isolation(self):
        cache = PartialJoinCache(capacity=8)
        grid_a, grid_b = ((0, 4),), ((0, 2), (2, 4))
        cache.put("sig1", grid_a, (0, 4), frozenset(), "x")
        assert cache.lookup("sig2", grid_a, (0, 4), frozenset()) is None
        assert cache.lookup("sig1", grid_b, (0, 4), frozenset()) is None
        assert not cache.has_entries("sig1", grid_b)
        assert not cache.has_entries("sig2", grid_a)
