"""Out-of-core storage, the scale-tier generator and the spilled join.

Covers the column-store backends (edge cases, tamper detection, range
views), the counter-based scale generator (determinism, subset
regeneration, mmap/RAM identity), the streaming incompleteness join
(spilled chunks bitwise-identical to the in-RAM run, up to row order),
the vectorized movie generator against a per-row reference, the process
memory gauges, and the columnar artifact layout.
"""

import json
import os
import subprocess
import sys
from dataclasses import replace
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.core import (
    ARCompletionModel,
    IncompletenessJoin,
    ModelConfig,
    PathLayout,
    ReStore,
    ReStoreConfig,
    build_encoders,
)
from repro.datasets.movies import (
    COUNTRIES,
    COUNTRY_CODES,
    MoviesConfig,
    _pick_lead_companies,
    generate_movies,
)
from repro.datasets.scale import (
    SCALE_FK,
    ScaleConfig,
    annotated_mask,
    child_block,
    children_before,
    fan_outs,
    generate_scale,
    generate_scale_incomplete,
    keep_mask,
    root_block,
    scale_annotation,
    scale_training_slice,
)
from repro.errors import (
    ArtifactIntegrityError,
    StorageError,
    StoreIntegrityError,
)
from repro.incomplete.registry import make_scenario_dataset
from repro.nn import TrainConfig
from repro.obs import (
    current_rss_bytes,
    peak_rss_bytes,
    reset_peak_rss,
    update_process_gauges,
)
from repro.obs.metrics import MetricsRegistry
from repro.query import parse_query
from repro.relational import ColumnKind, CompletionPath, Database, Table
from repro.relational.storage import (
    MappedStore,
    STORE_META,
    StoreWriter,
    contiguous_range,
    spill_arrays,
)
from repro.relational.tuple_factors import TF_UNKNOWN
from repro.runtime.cache import PartialJoinCache
from repro.serving import load_artifact, save_artifact, verify_artifact

K = ColumnKind.KEY
C = ColumnKind.CATEGORICAL
N = ColumnKind.CONTINUOUS

TINY = TrainConfig(epochs=3, batch_size=128, lr=1e-2, patience=2)

#: A small universe the generator tests share: a few blocks' worth of roots.
CFG = ScaleConfig(num_roots_override=192, block_rows=64, seed=3)


def _table_columns(table: Table) -> dict:
    return {c: np.asarray(table[c]) for c in table.column_names}


def _assert_tables_equal(a: Table, b: Table) -> None:
    assert a.column_names == b.column_names
    assert a.num_rows == b.num_rows
    for name in a.column_names:
        np.testing.assert_array_equal(np.asarray(a[name]), np.asarray(b[name]))


# ----------------------------------------------------------------------
# ColumnStore edge cases
# ----------------------------------------------------------------------
class TestStorageEdgeCases:
    def test_empty_table_round_trip(self, tmp_path):
        columns = {
            "id": np.array([], dtype=np.int64),
            "name": np.array([], dtype=object),
            "v": np.array([], dtype=np.float64),
        }
        kinds = {"id": K, "name": C, "v": N}
        store = spill_arrays(str(tmp_path / "empty"), "t", columns, kinds)
        assert store.num_rows == 0
        reopened = MappedStore.open(str(tmp_path / "empty"))
        for name in columns:
            assert len(reopened.read_full(name)) == 0
        # The dict-encoded column decodes to an (empty) object array.
        assert reopened.read_full("name").dtype == object

    def test_zero_row_blocks_interleave(self, tmp_path):
        writer = StoreWriter(str(tmp_path / "z"), "t", 4, primary_key=None)
        writer.add_column("x", N, dtype=np.float64)
        writer.add_column("s", C)
        writer.append_rows({"x": np.array([]), "s": np.array([], dtype=object)})
        writer.append_rows({"x": np.array([1.0, 2.0]),
                            "s": np.array(["a", "b"], dtype=object)})
        writer.append_rows({"x": np.array([]), "s": np.array([], dtype=object)})
        writer.append_rows({"x": np.array([3.0, 4.0]),
                            "s": np.array(["b", "c"], dtype=object)})
        store = writer.finalize()
        np.testing.assert_array_equal(store.read_full("x"), [1.0, 2.0, 3.0, 4.0])
        np.testing.assert_array_equal(store.read_full("s"),
                                      np.array(["a", "b", "b", "c"], dtype=object))

    def test_underfilled_column_refuses_finalize(self, tmp_path):
        writer = StoreWriter(str(tmp_path / "u"), "t", 3, primary_key=None)
        writer.add_column("x", N, dtype=np.float64)
        writer.append("x", np.array([1.0]))
        with pytest.raises(StorageError, match="received 1 rows"):
            writer.finalize()

    def test_overfilled_column_refuses_append(self, tmp_path):
        writer = StoreWriter(str(tmp_path / "o"), "t", 2, primary_key=None)
        writer.add_column("x", N, dtype=np.float64)
        with pytest.raises(StorageError, match="past the declared"):
            writer.append("x", np.arange(3, dtype=np.float64))

    def test_non_string_object_value_rejected(self, tmp_path):
        writer = StoreWriter(str(tmp_path / "ns"), "t", 2, primary_key=None)
        writer.add_column("s", C)
        with pytest.raises(StorageError, match="must contain strings"):
            writer.append("s", np.array([1, 2], dtype=object))

    def test_dict_overflow_promotes_to_int32(self, tmp_path):
        # More unique strings than int16 code space: the code file must be
        # stream-promoted mid-write and still round-trip bitwise.
        num = 33_000
        values = np.array([f"v{i:05d}" for i in range(num)], dtype=object)
        writer = StoreWriter(str(tmp_path / "wide"), "t", num, primary_key=None)
        writer.add_column("s", C)
        step = 8192
        for start in range(0, num, step):
            writer.append("s", values[start:start + step])
        store = writer.finalize()
        assert store.spec("s").code_dtype == np.dtype(np.int32).str
        np.testing.assert_array_equal(store.read_full("s"), values)
        # And a mid-file range decodes correctly after the promotion.
        np.testing.assert_array_equal(
            store.read_range("s", 32_700, 32_800), values[32_700:32_800]
        )

    def test_reopen_from_fresh_process(self, tmp_path):
        columns = {
            "id": np.arange(10, dtype=np.int64),
            "name": np.array([f"n{i % 3}" for i in range(10)], dtype=object),
        }
        spill_arrays(str(tmp_path / "p"), "t", columns, {"id": K, "name": C})
        src = str(Path(repro.__file__).resolve().parents[1])
        script = (
            "import sys; sys.path.insert(0, sys.argv[1])\n"
            "from repro.relational import Table\n"
            "t = Table.from_store(sys.argv[2])\n"
            "print(int(t['id'].sum()), t['name'][4])\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script, src, str(tmp_path / "p")],
            capture_output=True, text=True, check=True,
        )
        assert out.stdout.split() == ["45", "n1"]

    def test_meta_tamper_detected(self, tmp_path):
        spill_arrays(str(tmp_path / "m"), "t",
                     {"id": np.arange(5, dtype=np.int64)}, {"id": K})
        meta_path = tmp_path / "m" / STORE_META
        meta = json.loads(meta_path.read_text())
        meta["num_rows"] = 50
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(StoreIntegrityError, match="digest mismatch"):
            MappedStore.open(str(tmp_path / "m"))

    def test_truncated_column_file_detected(self, tmp_path):
        spill_arrays(str(tmp_path / "c"), "t",
                     {"id": np.arange(100, dtype=np.int64)}, {"id": K})
        npy = tmp_path / "c" / "id.npy"
        npy.write_bytes(npy.read_bytes()[:-16])
        with pytest.raises(StoreIntegrityError, match="bytes, expected"):
            MappedStore.open(str(tmp_path / "c"))

    def test_missing_column_file_detected(self, tmp_path):
        spill_arrays(str(tmp_path / "d"), "t",
                     {"id": np.arange(3, dtype=np.int64)}, {"id": K})
        os.remove(tmp_path / "d" / "id.npy")
        with pytest.raises(StoreIntegrityError, match="missing"):
            MappedStore.open(str(tmp_path / "d"))


# ----------------------------------------------------------------------
# Row selection: range views vs. copies on both backends
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def both_backends(tmp_path_factory):
    rng = np.random.default_rng(11)
    columns = {
        "id": np.arange(500, dtype=np.int64),
        "label": np.array([f"l{i % 7}" for i in range(500)], dtype=object),
        "v": rng.normal(size=500),
    }
    kinds = {"id": K, "label": C, "v": N}
    ram = Table("t", columns, kinds)
    mapped = ram.spill_to(str(tmp_path_factory.mktemp("views") / "t"))
    return ram, mapped


class TestRangeViews:
    def test_contiguous_range_detection(self):
        assert contiguous_range(np.arange(5, 12)) == (5, 12)
        assert contiguous_range(np.array([3, 5, 4])) is None
        assert contiguous_range(np.array([2, 2, 3])) is None
        assert contiguous_range(np.array([], dtype=np.int64)) is None

    def test_in_ram_range_reads_are_views(self, both_backends):
        ram, _ = both_backends
        view = ram.column_range("v", 100, 200)
        assert np.shares_memory(view, ram.column("v"))

    def test_contiguous_select_matches_fancy(self, both_backends):
        for table in both_backends:
            mask = np.zeros(table.num_rows, dtype=bool)
            mask[40:260] = True
            picked = table.select(mask)
            for name in table.column_names:
                np.testing.assert_array_equal(
                    np.asarray(picked[name]), np.asarray(table[name])[mask]
                )

    def test_contiguous_take_matches_fancy(self, both_backends):
        scattered = np.array([3, 9, 9, 470, 22])
        for table in both_backends:
            contig = table.take(np.arange(50, 90))
            for name in table.column_names:
                np.testing.assert_array_equal(
                    np.asarray(contig[name]), np.asarray(table[name])[50:90]
                )
            fancy = table.take(scattered)
            for name in table.column_names:
                np.testing.assert_array_equal(
                    np.asarray(fancy[name]), np.asarray(table[name])[scattered]
                )

    def test_gather_contiguous_equals_range(self, both_backends):
        for table in both_backends:
            np.testing.assert_array_equal(
                table.gather("v", np.arange(10, 60)),
                table.column_range("v", 10, 60),
            )

    def test_backends_read_identically(self, both_backends):
        ram, mapped = both_backends
        assert mapped.is_mapped and not ram.is_mapped
        _assert_tables_equal(ram, mapped)


# ----------------------------------------------------------------------
# Scale-tier generator
# ----------------------------------------------------------------------
class TestScaleGenerator:
    def test_generation_is_deterministic(self):
        a = generate_scale(CFG)
        b = generate_scale(CFG)
        for name in ("site", "reading"):
            _assert_tables_equal(a.table(name), b.table(name))

    def test_seed_changes_content(self):
        a = generate_scale(CFG)
        b = generate_scale(replace(CFG, seed=4))
        assert not np.array_equal(a.table("site")["score"],
                                  b.table("site")["score"])

    def test_root_subset_regenerates_in_place(self):
        full = root_block(CFG, 0, CFG.num_roots)
        part = root_block(CFG, 50, 80)
        for name, values in part.items():
            np.testing.assert_array_equal(values, full[name][50:80])

    def test_child_subset_regenerates_in_place(self):
        full = child_block(CFG, 0, CFG.num_roots, base_child_id=0)
        base = children_before(CFG, 50)
        stop = base + int(fan_outs(CFG, 50, 80).sum())
        part = child_block(CFG, 50, 80)
        for name, values in part.items():
            np.testing.assert_array_equal(values, full[name][base:stop])

    def test_block_size_does_not_change_content(self):
        a = generate_scale(CFG)
        b = generate_scale(replace(CFG, block_rows=17))
        for name in ("site", "reading"):
            _assert_tables_equal(a.table(name), b.table(name))

    def test_mapped_generation_matches_ram(self, tmp_path):
        ram = generate_scale(CFG)
        mapped = generate_scale(CFG, spill_dir=str(tmp_path / "sf"))
        for name in ("site", "reading"):
            assert mapped.table(name).is_mapped
            _assert_tables_equal(ram.table(name), mapped.table(name))

    def test_incomplete_is_keep_masked_complete(self):
        complete = generate_scale(CFG)
        incomplete, annotation = generate_scale_incomplete(CFG)
        kept = keep_mask(CFG, complete.table("reading")["id"])
        for name in complete.table("reading").column_names:
            np.testing.assert_array_equal(
                incomplete.table("reading")[name],
                complete.table("reading")[name][kept],
            )
        assert annotation.is_complete("site")
        assert not annotation.is_complete("reading")

    def test_annotation_carries_true_fan_outs(self):
        annotation = scale_annotation(CFG)
        tfs = annotation.known_tuple_factors[str(SCALE_FK)]
        known = annotated_mask(CFG, np.arange(CFG.num_roots))
        true_fans = fan_outs(CFG, 0, CFG.num_roots)
        np.testing.assert_array_equal(tfs[known], true_fans[known])
        assert (tfs[~known] == TF_UNKNOWN).all()
        # The annotation rate is a probability, not a quota — just check
        # both populations exist at this size.
        assert 0 < known.sum() < CFG.num_roots

    def test_training_slice_is_a_prefix(self):
        small = scale_training_slice(CFG, 48)
        assert small.num_roots == 48
        full_sites = root_block(CFG, 0, 48)
        slice_sites = root_block(small, 0, 48)
        for name in full_sites:
            np.testing.assert_array_equal(slice_sites[name], full_sites[name])
        db = generate_scale(small)
        assert len(db.table("site")) == 48


# ----------------------------------------------------------------------
# Streaming (spilled) incompleteness join
# ----------------------------------------------------------------------
JOIN_CFG = ScaleConfig(num_roots_override=200, seed=5)


@pytest.fixture(scope="module")
def scale_join_setup(tmp_path_factory):
    """A tiny fitted model plus the same database on both backends."""
    db, annotation = generate_scale_incomplete(JOIN_CFG)
    mapped_dir = tmp_path_factory.mktemp("scale_db")
    mapped_db, _ = generate_scale_incomplete(JOIN_CFG, spill_dir=str(mapped_dir))
    encoders = build_encoders(db, num_bins=8)
    path = CompletionPath(("site", "reading"))
    layout = PathLayout(db, annotation, path, encoders,
                        tf_cap=JOIN_CFG.fan_out_cap)
    config = ModelConfig(hidden=(24, 24), train=TINY)
    model = ARCompletionModel(layout, config)
    model.fit()
    mapped_layout = PathLayout(mapped_db, annotation, path,
                               build_encoders(mapped_db, num_bins=8),
                               tf_cap=JOIN_CFG.fan_out_cap)
    mapped_model = ARCompletionModel(mapped_layout, config)
    mapped_model.load_state_dict(model.state_dict())
    mapped_model.mark_fitted_from_artifact()
    return model, mapped_model


def _canonical(completed):
    """Row arrays of a completed join in a content-derived canonical order."""
    result = completed.result
    keys = [result.effective_weights()]
    for name in sorted(result.columns):
        col = np.asarray(result.columns[name])
        if col.dtype == object:
            _, inverse = np.unique(col.astype(str), return_inverse=True)
            keys.append(inverse)
        else:
            keys.append(col)
    order = np.lexsort(tuple(keys))
    arrays = {
        name: np.asarray(result.columns[name])[order]
        for name in result.columns
    }
    arrays["__weights__"] = result.effective_weights()[order]
    arrays["__synth__"] = completed.target_synthesized()[order]
    arrays["__codes__"] = np.asarray(completed.codes)[order]
    return arrays


def _assert_same_rows(a, b) -> None:
    ca, cb = _canonical(a), _canonical(b)
    assert set(ca) == set(cb)
    for name, values in ca.items():
        np.testing.assert_array_equal(values, cb[name], err_msg=name)


class TestSpilledJoin:
    def test_spilled_serial_matches_in_ram(self, scale_join_setup, tmp_path):
        model, mapped_model = scale_join_setup
        baseline = IncompletenessJoin(model, seed=0).run()
        spilled = IncompletenessJoin(
            mapped_model, seed=0, chunk_size=64,
            spill_dir=str(tmp_path / "run"),
        ).run()
        assert baseline.num_rows == spilled.num_rows
        _assert_same_rows(baseline, spilled)
        # The spilled result's columns are store-backed, not RAM arrays.
        assert (tmp_path / "run" / "result").is_dir()

    def test_spilled_process_matches_in_ram(self, scale_join_setup, tmp_path):
        model, mapped_model = scale_join_setup
        baseline = IncompletenessJoin(model, seed=0).run()
        spilled = IncompletenessJoin(
            mapped_model, seed=0, chunk_size=50, n_workers=2,
            parallel_backend="process", spill_dir=str(tmp_path / "run"),
        ).run()
        _assert_same_rows(baseline, spilled)

    def test_chunk_size_invariance_with_spill(self, scale_join_setup, tmp_path):
        _, mapped_model = scale_join_setup
        a = IncompletenessJoin(mapped_model, seed=0, chunk_size=32,
                               spill_dir=str(tmp_path / "a")).run()
        b = IncompletenessJoin(mapped_model, seed=0, chunk_size=128,
                               spill_dir=str(tmp_path / "b")).run()
        _assert_same_rows(a, b)

    def test_spilled_outputs_stay_out_of_partial_cache(self):
        class _Spilled:
            cacheable = False

        class _Plain:
            pass

        cache = PartialJoinCache(capacity=4)
        cache.put("sig", ("grid",), (0, 10), frozenset(), _Spilled())
        assert len(cache) == 0
        cache.put("sig", ("grid",), (0, 10), frozenset(), _Plain())
        assert len(cache) == 1


# ----------------------------------------------------------------------
# Vectorized movie generator vs. a per-row reference
# ----------------------------------------------------------------------
def _pick_lead_companies_reference(u_domestic, u_pick, m_country, c_country,
                                   num_companies):
    """Scalar transcription of the documented lead-company rule."""
    m_country = m_country.copy()
    lead = np.empty(len(m_country), dtype=np.int64)
    for i in range(len(m_country)):
        pool = np.flatnonzero(c_country == m_country[i])
        if u_domestic[i] < 0.8 and len(pool):
            lead[i] = pool[min(int(u_pick[i] * len(pool)), len(pool) - 1)]
        else:
            pick = min(int(u_pick[i] * num_companies), num_companies - 1)
            lead[i] = pick
            m_country[i] = c_country[pick]
    return lead, m_country


class TestMoviesVectorized:
    def test_lead_companies_match_per_row_reference(self):
        rng = np.random.default_rng(21)
        n_m, n_c = 600, 40
        # Leave country 0 empty of companies: exercises the no-pool branch.
        c_country = rng.integers(1, 6, size=n_c)
        m_country = rng.integers(0, 6, size=n_m)
        u_dom, u_pick = rng.random(n_m), rng.random(n_m)
        lead_v, country_v = _pick_lead_companies(
            u_dom, u_pick, m_country, c_country, n_c
        )
        lead_r, country_r = _pick_lead_companies_reference(
            u_dom, u_pick, m_country, c_country, n_c
        )
        np.testing.assert_array_equal(lead_v, lead_r)
        np.testing.assert_array_equal(country_v, country_r)

    def test_input_country_array_not_mutated(self):
        rng = np.random.default_rng(3)
        m_country = rng.integers(0, 6, size=50)
        before = m_country.copy()
        _pick_lead_companies(np.ones(50), rng.random(50), m_country,
                             rng.integers(0, 6, size=20), 20)
        np.testing.assert_array_equal(m_country, before)

    def test_generate_movies_deterministic(self):
        a = generate_movies(MoviesConfig(num_movies=200, num_directors=60,
                                         num_actors=120, num_companies=30))
        b = generate_movies(MoviesConfig(num_movies=200, num_directors=60,
                                         num_actors=120, num_companies=30))
        for name in ("movie", "director", "actor", "company",
                     "movie_director", "movie_actor", "movie_company"):
            _assert_tables_equal(a.table(name), b.table(name))

    def test_movie_country_follows_lead_company(self):
        config = MoviesConfig(num_movies=300, num_companies=40)
        db = generate_movies(config)
        movie, company = db.table("movie"), db.table("company")
        links = db.table("movie_company")
        # The first num_movies link rows are the leads, in movie order.
        lead = np.asarray(links["company_id"][:config.num_movies])
        company_country = np.asarray([
            COUNTRIES[COUNTRY_CODES.index(code)]
            for code in company["country_code"][lead]
        ], dtype=object)
        np.testing.assert_array_equal(movie["country"], company_country)


# ----------------------------------------------------------------------
# Process memory gauges
# ----------------------------------------------------------------------
class TestProcessGauges:
    def test_rss_readings_are_positive(self):
        current = current_rss_bytes()
        peak = peak_rss_bytes()
        assert current > 0
        assert peak >= current > 0

    def test_reset_peak_keeps_readings_sane(self):
        reset_peak_rss()  # best-effort: may be a no-op without clear_refs
        assert peak_rss_bytes() > 0

    def test_update_process_gauges_stamps_registry(self):
        reg = MetricsRegistry()
        values = update_process_gauges(reg)
        assert values["process.rss_bytes"] > 0
        assert values["process.peak_rss_bytes"] > 0
        assert reg.gauge("process.rss_bytes").value == values["process.rss_bytes"]
        assert (reg.gauge("process.peak_rss_bytes").value
                == values["process.peak_rss_bytes"])


# ----------------------------------------------------------------------
# Columnar artifacts
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def scale_engine():
    dataset = make_scenario_dataset("scale/mcar", seed=7, scale=0.002)
    config = ReStoreConfig(model=ModelConfig(hidden=(16, 16), train=TINY))
    return ReStore.from_dataset(dataset, config).fit()


class TestColumnarArtifact:
    def test_layouts_share_the_database_digest(self, scale_engine, tmp_path):
        save_artifact(scale_engine, tmp_path / "plain")
        save_artifact(scale_engine, tmp_path / "col", columnar=True)
        plain = verify_artifact(tmp_path / "plain")
        col = verify_artifact(tmp_path / "col")
        assert col["database_format"] == "columnar"
        assert plain["database_digest"] == col["database_digest"]
        assert col["store_files"]

    def test_columnar_load_maps_tables_and_answers(self, scale_engine,
                                                   tmp_path):
        # Through the engine method, which must forward ``columnar``.
        scale_engine.save_artifact(tmp_path / "col", columnar=True)
        loaded = load_artifact(tmp_path / "col")
        assert all(t.is_mapped for t in loaded.db.tables.values())
        query = parse_query("SELECT COUNT(*) FROM reading")
        original = scale_engine.answer(query)
        reloaded = loaded.answer(query)
        assert original.result.values == reloaded.result.values

    def test_store_tamper_detected(self, scale_engine, tmp_path):
        save_artifact(scale_engine, tmp_path / "col", columnar=True)
        victim = next((tmp_path / "col" / "database_store").rglob("*.npy"))
        raw = bytearray(victim.read_bytes())
        raw[-1] ^= 0xFF
        victim.write_bytes(bytes(raw))
        with pytest.raises(ArtifactIntegrityError, match="store file"):
            verify_artifact(tmp_path / "col")
