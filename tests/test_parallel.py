"""Tests for parallel sharded completion (:mod:`repro.runtime.parallel`).

Covers the executor contract (ordering, per-worker state, exception
surfacing) and the determinism guarantee of the sharded incompleteness
join: completed rows at a fixed seed are bitwise identical (up to order)
for serial vs thread vs process backends and for any worker count, and
parallel ``fit`` trains models identical to a serial run.
"""

import pickle

import pytest

from repro.core import (
    ARCompletionModel,
    IncompletenessJoin,
    ModelConfig,
    PathLayout,
    ReStore,
    ReStoreConfig,
    build_encoders,
)
from repro.datasets import (
    HousingConfig,
    SyntheticConfig,
    generate_housing,
    generate_synthetic,
)
from repro.experiments import joins_bitwise_identical
from repro.incomplete import RemovalSpec, make_incomplete
from repro.nn import TrainConfig
from repro.relational import CompletionPath
from repro.runtime import PARALLEL_BACKENDS, default_chunk_size, get_executor
from repro.runtime.parallel import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
)

FAST = TrainConfig(epochs=3, batch_size=128, lr=1e-2, patience=2)


# ----------------------------------------------------------------------
# Executor task functions (module-level: process workers pickle them
# by reference)
# ----------------------------------------------------------------------

def _double_plus_state(state, task):
    return (state or 0) + 2 * task


def _boom(state, task):
    if task == 3:
        raise ValueError(f"boom on task {task}")
    return task


def _build_state(payload):
    return {"base": payload * 10}


def _use_state(state, task):
    return state["base"] + task


def _boom_init(payload):
    raise RuntimeError(f"init exploded with payload {payload}")


def _identity(state, task):
    return task


# ----------------------------------------------------------------------
# Executor contract
# ----------------------------------------------------------------------

class TestExecutors:
    def test_factory_builds_each_backend(self):
        assert isinstance(get_executor("serial", 1), SerialExecutor)
        assert isinstance(get_executor("thread", 2), ThreadExecutor)
        assert isinstance(get_executor("process", 2), ProcessExecutor)

    def test_factory_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown parallel backend"):
            get_executor("gpu", 2)

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError, match="n_workers"):
            get_executor("thread", 0)

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_results_in_task_order(self, backend):
        executor = get_executor(backend, 2)
        tasks = list(range(12))
        assert executor.map(_double_plus_state, tasks, payload=1) == [
            1 + 2 * t for t in tasks
        ]

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_init_builds_worker_state_from_payload(self, backend):
        executor = get_executor(backend, 2)
        out = executor.map(_use_state, [1, 2, 3], payload=4, init=_build_state)
        assert out == [41, 42, 43]

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_crash_surfaces_original_exception(self, backend):
        """A failing task re-raises its exception instead of hanging —
        including from process workers, where it is pickled back."""
        executor = get_executor(backend, 2)
        with pytest.raises(ValueError, match="boom on task 3"):
            executor.map(_boom, list(range(6)))

    def test_single_worker_process_runs_inline(self):
        # n_workers=1 skips the pool; init still builds the worker state.
        out = ProcessExecutor(1).map(_use_state, [5], payload=2, init=_build_state)
        assert out == [25]

    def test_default_chunk_size(self):
        assert default_chunk_size(1000, 1) is None
        assert default_chunk_size(0, 4) is None
        # 4 tasks per worker: 1000 rows / (4 * 4) -> 63-row chunks.
        assert default_chunk_size(1000, 4) == 63
        assert default_chunk_size(3, 8) == 1


class TestExecutorEdgeCases:
    """The corners the first parallel PR's suite skipped: init crashes,
    single-worker short-circuits, and pool reuse after a failure."""

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_init_crash_surfaces_original_exception(self, backend):
        """A failing worker *initializer* must surface its exception, not a
        BrokenProcessPool or a hang."""
        executor = get_executor(backend, 2)
        with pytest.raises(RuntimeError, match="init exploded with payload 9"):
            executor.map(_identity, [1, 2, 3, 4], payload=9, init=_boom_init)

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_single_worker_short_circuit_equivalence(self, backend):
        """n_workers=1 runs inline; results (incl. init-derived state) are
        exactly the serial executor's."""
        tasks = list(range(8))
        serial = SerialExecutor().map(_use_state, tasks, payload=3,
                                      init=_build_state)
        inline = get_executor(backend, 1).map(_use_state, tasks, payload=3,
                                              init=_build_state)
        assert inline == serial

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_single_task_short_circuit_equivalence(self, backend):
        """A single task never pays pool start-up, whatever the worker
        count — and the result still matches serial."""
        serial = SerialExecutor().map(_double_plus_state, [21], payload=1)
        pooled = get_executor(backend, 4).map(_double_plus_state, [21],
                                              payload=1)
        assert pooled == serial == [43]

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_executor_reusable_after_task_error(self, backend):
        """A failed map must not poison the executor: the same instance maps
        fresh tasks afterwards (pools are per-call, state is rebuilt)."""
        executor = get_executor(backend, 2)
        with pytest.raises(ValueError, match="boom on task 3"):
            executor.map(_boom, list(range(6)))
        tasks = list(range(10))
        assert executor.map(_double_plus_state, tasks, payload=2) == [
            2 + 2 * t for t in tasks
        ]

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_executor_reusable_after_init_error(self, backend):
        executor = get_executor(backend, 2)
        with pytest.raises(RuntimeError, match="init exploded"):
            executor.map(_identity, [1, 2, 3], payload=0, init=_boom_init)
        out = executor.map(_use_state, [1, 2, 3], payload=4, init=_build_state)
        assert out == [41, 42, 43]


# ----------------------------------------------------------------------
# Cross-backend determinism of the sharded incompleteness join
# ----------------------------------------------------------------------

def _assert_joins_identical(a, b):
    assert a.num_synthesized == b.num_synthesized
    assert joins_bitwise_identical(a, b)


@pytest.fixture(scope="module")
def fitted_model():
    db = generate_synthetic(SyntheticConfig(num_parents=250, predictability=0.9,
                                            seed=0))
    dataset = make_incomplete(db, [RemovalSpec("tb", "b", 0.5, 0.4)],
                              tf_keep_rate=0.5, seed=1)
    encoders = build_encoders(dataset.incomplete, num_bins=8)
    layout = PathLayout(dataset.incomplete, dataset.annotation,
                        CompletionPath(("ta", "tb")), encoders)
    model = ARCompletionModel(layout, ModelConfig(hidden=(32, 32), train=FAST))
    model.fit()
    return model


@pytest.fixture(scope="module")
def fitted_dangling():
    """A path whose n:1 hop has dangling FKs — shared parents are parked on
    the workers and resolved after the merge barrier."""
    db = generate_housing(HousingConfig(seed=0, num_neighborhoods=30,
                                        num_landlords=120,
                                        apartments_per_neighborhood=6.0))
    dataset = make_incomplete(
        db, [RemovalSpec("landlord", "landlord_response_rate", 0.5, 0.4)],
        drop_dangling_links=False, seed=1,
    )
    encoders = build_encoders(dataset.incomplete, num_bins=8)
    layout = PathLayout(dataset.incomplete, dataset.annotation,
                        CompletionPath(("apartment", "landlord")), encoders)
    model = ARCompletionModel(layout, ModelConfig(hidden=(32, 32), train=FAST))
    model.fit()
    return model


@pytest.mark.slow
class TestCrossBackendJoinDeterminism:
    @pytest.fixture(scope="class")
    def serial_join(self, fitted_model):
        return IncompletenessJoin(fitted_model, seed=7).run()

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_rows_identical_across_backends(self, fitted_model, serial_join,
                                            backend, n_workers):
        parallel = IncompletenessJoin(
            fitted_model, seed=7, n_workers=n_workers, parallel_backend=backend,
        ).run()
        _assert_joins_identical(serial_join, parallel)

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_dangling_parents_identical(self, fitted_dangling, backend):
        """Chunks of one dangling key's children land on different workers;
        the shared synthesized parent must still be bitwise identical."""
        serial = IncompletenessJoin(fitted_dangling, seed=7).run()
        assert serial.num_synthesized.get("landlord", 0) > 0  # branch on
        parallel = IncompletenessJoin(
            fitted_dangling, seed=7, chunk_size=3,
            n_workers=4, parallel_backend=backend,
        ).run()
        _assert_joins_identical(serial, parallel)

    def test_explicit_chunk_size_respected_with_workers(self, fitted_model):
        serial = IncompletenessJoin(fitted_model, seed=3).run()
        parallel = IncompletenessJoin(
            fitted_model, seed=3, chunk_size=17,
            n_workers=2, parallel_backend="thread",
        ).run()
        _assert_joins_identical(serial, parallel)

    def test_autograd_backend_stays_bitwise_under_process(self, fitted_model):
        """An autograd-backend model has no compiled snapshot to ship; the
        process backend must complete it in-process rather than silently
        sampling float32 on workers — rows still match serial bitwise."""
        fitted_model.inference_backend = "autograd"
        try:
            serial = IncompletenessJoin(fitted_model, seed=11).run()
            parallel = IncompletenessJoin(
                fitted_model, seed=11, n_workers=4, parallel_backend="process",
            ).run()
        finally:
            fitted_model.inference_backend = "compiled"
        _assert_joins_identical(serial, parallel)


@pytest.mark.slow
class TestCompletionSnapshot:
    def test_snapshot_pickles_and_matches_model(self, fitted_model):
        """The worker payload: picklable, and it drives the join to the
        exact rows the live (compiled) model produces."""
        snapshot = fitted_model.inference_snapshot()
        restored = pickle.loads(pickle.dumps(snapshot))
        assert restored.kind == fitted_model.kind
        from_model = IncompletenessJoin(fitted_model, seed=5).run()
        from_snapshot = IncompletenessJoin(restored, seed=5).run()
        _assert_joins_identical(from_model, from_snapshot)

    def test_snapshot_requires_fitted_model(self):
        db = generate_synthetic(SyntheticConfig(num_parents=60, seed=0))
        dataset = make_incomplete(db, [RemovalSpec("tb", "b", 0.5, 0.4)], seed=1)
        encoders = build_encoders(dataset.incomplete, num_bins=8)
        layout = PathLayout(dataset.incomplete, dataset.annotation,
                            CompletionPath(("ta", "tb")), encoders)
        model = ARCompletionModel(layout, ModelConfig(hidden=(16, 16), train=FAST))
        with pytest.raises(RuntimeError, match="fitted"):
            model.inference_snapshot()


# ----------------------------------------------------------------------
# Parallel fit + engine configuration
# ----------------------------------------------------------------------

class TestEngineConfig:
    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="parallel_backend"):
            ReStoreConfig(parallel_backend="quantum")

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError, match="n_workers"):
            ReStoreConfig(n_workers=0)


@pytest.mark.slow
class TestParallelFit:
    @pytest.fixture(scope="class")
    def housing_dataset(self):
        db = generate_housing(HousingConfig(seed=0, num_neighborhoods=25,
                                            num_landlords=60,
                                            apartments_per_neighborhood=4.0))
        return make_incomplete(db, [RemovalSpec("apartment", "price", 0.5, 0.4)],
                               seed=1)

    def _fit(self, dataset, backend, n_workers):
        config = ReStoreConfig(
            model=ModelConfig(hidden=(16, 16), train=FAST),
            parallel_backend=backend, n_workers=n_workers,
        )
        return ReStore.from_dataset(dataset, config).fit()

    def _candidate_key(self, engine, target):
        return [
            (c.model.kind, str(c.path), c.model.target_test_loss())
            for c in engine.candidates(target)
        ]

    @pytest.mark.parametrize("backend,n_workers", [("thread", 2), ("process", 2)])
    def test_models_identical_to_serial_fit(self, housing_dataset, backend,
                                            n_workers):
        serial = self._fit(housing_dataset, "serial", 1)
        parallel = self._fit(housing_dataset, backend, n_workers)
        assert (self._candidate_key(serial, "apartment")
                == self._candidate_key(parallel, "apartment"))
        # The engine answers queries off the worker-trained models, and the
        # completed join matches the serial engine's bitwise.
        _assert_joins_identical(
            serial.completed_join(serial.candidates("apartment")[0].model),
            parallel.completed_join(parallel.candidates("apartment")[0].model),
        )

    def test_process_fit_rebinds_models_to_parent_db(self, housing_dataset):
        """Worker-trained models come back pickled with a database copy;
        fit() re-anchors them so the parent holds one database, not one
        per trained path."""
        engine = self._fit(housing_dataset, "process", 2)
        for candidate in engine.candidates("apartment"):
            assert candidate.model.layout.db is engine.db
            forest = getattr(candidate.model, "forest", None)
            if forest is not None:
                assert forest.db is engine.db

    def test_parallel_fit_registers_all_models(self, housing_dataset):
        engine = self._fit(housing_dataset, "thread", 2)
        kinds = {c.model.kind for c in engine.candidates("apartment")}
        assert "ar" in kinds and "ssar" in kinds
        for candidate in engine.candidates("apartment"):
            key = (candidate.model.kind, candidate.path.tables)
            assert engine._models[key] is candidate.model
