"""Integration tests: incompleteness join, merging, selection, engine, confidence."""

import numpy as np
import pytest

from repro.core import (
    ARCompletionModel,
    BiasDirection,
    ConfidenceEstimator,
    IncompletenessJoin,
    ModelConfig,
    PathLayout,
    ReStore,
    ReStoreConfig,
    SuspectedBias,
    build_encoders,
    compatible_order,
    merge_paths,
    training_savings,
)
from repro.datasets import (
    HousingConfig,
    SyntheticConfig,
    generate_housing,
    generate_synthetic,
)
from repro.incomplete import RemovalSpec, make_incomplete
from repro.metrics import bias_reduction, cardinality_correction
from repro.nn import TrainConfig
from repro.query import Aggregate, AggregateKind, Query, execute, parse_query
from repro.relational import CompletionPath

FAST = TrainConfig(epochs=8, batch_size=128, lr=1e-2, patience=3)


@pytest.fixture(scope="module")
def synthetic_engineless():
    db = generate_synthetic(SyntheticConfig(num_parents=400, predictability=0.9,
                                            seed=0))
    dataset = make_incomplete(db, [RemovalSpec("tb", "b", 0.5, 0.4)],
                              tf_keep_rate=0.5, seed=1)
    encoders = build_encoders(dataset.incomplete, num_bins=8)
    layout = PathLayout(dataset.incomplete, dataset.annotation,
                        CompletionPath(("ta", "tb")), encoders)
    model = ARCompletionModel(layout, ModelConfig(hidden=(32, 32), train=FAST))
    model.fit()
    return db, dataset, model


@pytest.fixture(scope="module")
def housing_engine():
    db = generate_housing(HousingConfig(seed=0, num_neighborhoods=60,
                                        num_landlords=250,
                                        apartments_per_neighborhood=12.0))
    dataset = make_incomplete(db, [RemovalSpec("apartment", "price", 0.5, 0.4)],
                              tf_keep_rate=0.3, seed=1)
    config = ReStoreConfig(model=ModelConfig(hidden=(48, 48), train=FAST))
    engine = ReStore.from_dataset(dataset, config).fit()
    return db, dataset, engine


class TestIncompletenessJoin:
    def test_restores_cardinality(self, synthetic_engineless):
        db, dataset, model = synthetic_engineless
        completed = IncompletenessJoin(model, seed=0).run()
        total = completed.result.effective_weights().sum()
        true_n = len(db.table("tb"))
        inc_n = len(dataset.incomplete.table("tb"))
        assert cardinality_correction(true_n, inc_n, total) > 0.5

    def test_reduces_bias(self, synthetic_engineless):
        db, dataset, model = synthetic_engineless
        completed = IncompletenessJoin(model, seed=0).run()
        values = completed.result.resolve("tb.b")
        weights = completed.result.effective_weights()
        uniques, counts = np.unique(db.table("tb")["b"], return_counts=True)
        value = uniques[counts.argmax()]
        true_f = (db.table("tb")["b"] == value).mean()
        inc_f = (dataset.incomplete.table("tb")["b"] == value).mean()
        comp_f = float((weights * (values == value)).sum() / weights.sum())
        assert bias_reduction(true_f, inc_f, comp_f) > 0.3

    def test_existing_rows_preserved(self, synthetic_engineless):
        db, dataset, model = synthetic_engineless
        completed = IncompletenessJoin(model, seed=0).run()
        synth = completed.target_synthesized()
        inc_tb = dataset.incomplete.table("tb")
        # Every available tb tuple appears exactly once among real rows.
        real_ids = completed.result.resolve("tb.id")[~synth]
        np.testing.assert_array_equal(np.sort(real_ids), np.sort(inc_tb["id"]))

    def test_synth_ids_unique_negative(self, synthetic_engineless):
        _, __, model = synthetic_engineless
        completed = IncompletenessJoin(model, seed=0).run()
        synth = completed.target_synthesized()
        ids = completed.result.resolve("tb.id")[synth]
        assert (ids <= -2).all()
        assert len(np.unique(ids)) == len(ids)

    def test_stop_table_truncates(self, housing_engine):
        db, dataset, engine = housing_engine
        candidate = next(
            c for c in engine.candidates("apartment")
            if c.path.tables == ("neighborhood", "apartment")
        )
        join = IncompletenessJoin(candidate.model, seed=0)
        with pytest.raises(ValueError):
            join.run(stop_table="neighborhood")
        with pytest.raises(ValueError):
            join.run(stop_table="ghost")

    def test_deterministic_given_seed(self, synthetic_engineless):
        _, __, model = synthetic_engineless
        a = IncompletenessJoin(model, seed=7).run()
        b = IncompletenessJoin(model, seed=7).run()
        np.testing.assert_array_equal(
            a.result.resolve("tb.b"), b.result.resolve("tb.b")
        )

    def test_codes_carried_for_confidence(self, synthetic_engineless):
        _, __, model = synthetic_engineless
        completed = IncompletenessJoin(model, seed=0).run()
        assert completed.codes is not None
        assert len(completed.codes) == completed.num_rows


class TestMerging:
    def test_subset_paths_merge(self):
        long = CompletionPath(("t3", "t2", "t1"))
        short = CompletionPath(("t3", "t2"))
        groups = merge_paths([long, short])
        assert len(groups) == 1
        assert len(groups[0]) == 2
        assert groups[0].table_order == ("t3", "t2", "t1")

    def test_conflicting_orders_do_not_merge(self):
        # p(T2|T1) and p(T1|T2) cannot share one ordering (paper example).
        a = CompletionPath(("t1", "t2"))
        b = CompletionPath(("t2", "t1"))
        groups = merge_paths([a, b])
        assert len(groups) == 2

    def test_disjoint_tables_do_not_merge(self):
        a = CompletionPath(("a", "b"))
        b = CompletionPath(("c", "d"))
        assert len(merge_paths([a, b])) == 2

    def test_compatible_order_none_for_cycle(self):
        a = CompletionPath(("t1", "t2"))
        b = CompletionPath(("t2", "t1"))
        assert compatible_order([a, b]) is None

    def test_training_savings(self):
        paths = [
            CompletionPath(("t3", "t2", "t1")),
            CompletionPath(("t3", "t2")),
            CompletionPath(("x", "y")),
        ]
        stats = training_savings(paths)
        assert stats["models_without_merging"] == 3
        assert stats["models_with_merging"] == 2
        assert stats["saved"] == 1


class TestEngine:
    def test_candidates_ranked_by_signal(self, housing_engine):
        _, __, engine = housing_engine
        chosen = engine.select_model("apartment")
        signals = [c.signal for c in engine.candidates("apartment")]
        assert chosen.signal == max(signals)

    def test_coverage_constraint(self, housing_engine):
        _, __, engine = housing_engine
        query = parse_query(
            "SELECT AVG(price) FROM landlord NATURAL JOIN apartment;"
        )
        chosen = engine.select_model("apartment", query=query)
        assert {"landlord", "apartment"} <= set(chosen.path.tables)

    def test_answer_complete_query_passthrough(self, housing_engine):
        db, dataset, engine = housing_engine
        query = parse_query("SELECT COUNT(*) FROM neighborhood;")
        answer = engine.answer(query)
        assert not answer.used_completion
        assert answer.result.scalar == len(dataset.incomplete.table("neighborhood"))

    def test_answer_improves_count(self, housing_engine):
        db, dataset, engine = housing_engine
        query = Query(("apartment",), Aggregate(AggregateKind.COUNT))
        truth = execute(db, query).scalar
        inc = execute(dataset.incomplete, query).scalar
        answer = engine.answer(query)
        assert abs(answer.result.scalar - truth) < abs(inc - truth)

    def test_answer_improves_avg_price(self, housing_engine):
        db, dataset, engine = housing_engine
        query = Query(("apartment",), Aggregate(AggregateKind.AVG, "price"))
        truth = execute(db, query).scalar
        inc = execute(dataset.incomplete, query).scalar
        bias = SuspectedBias("price", BiasDirection.UNDERESTIMATED)
        answer = engine.answer(query, suspected_bias=bias)
        assert abs(answer.result.scalar - truth) < abs(inc - truth)

    def test_join_cache_reused(self, housing_engine):
        _, __, engine = housing_engine
        engine.clear_cache()
        q1 = Query(("apartment",), Aggregate(AggregateKind.COUNT))
        q2 = Query(("apartment",), Aggregate(AggregateKind.AVG, "price"))
        a1 = engine.answer(q1)
        a2 = engine.answer(q2)
        same_model = (a1.model.kind, a1.model.layout.path.tables) == (
            a2.model.kind, a2.model.layout.path.tables)
        if same_model:
            assert engine.cache_hits >= 1
            assert a2.from_cache

    def test_merge_stats_populated(self, housing_engine):
        _, __, engine = housing_engine
        assert engine.merge_stats["models_without_merging"] >= 2

    def test_unknown_target_raises(self, housing_engine):
        _, __, engine = housing_engine
        with pytest.raises(RuntimeError):
            engine.candidates("neighborhood")

    def test_annotation_must_cover(self):
        db = generate_housing(HousingConfig(seed=2, num_neighborhoods=10,
                                            num_landlords=20,
                                            apartments_per_neighborhood=3.0))
        from repro.relational import SchemaAnnotation
        partial = SchemaAnnotation(complete_tables={"neighborhood"},
                                   incomplete_tables={"apartment"})
        with pytest.raises(ValueError):
            ReStore(db, partial)


class TestConfidence:
    def test_band_contains_truth_and_envelope(self, synthetic_engineless):
        db, dataset, model = synthetic_engineless
        completed = IncompletenessJoin(model, seed=0).run()
        uniques, counts = np.unique(db.table("tb")["b"], return_counts=True)
        value = uniques[counts.argmax()]
        band = ConfidenceEstimator(model, completed).count_fraction("b", value)
        true_fraction = (db.table("tb")["b"] == value).mean()
        assert band.theoretical_min - 1e-9 <= band.lower
        assert band.upper <= band.theoretical_max + 1e-9
        assert band.contains(true_fraction)

    def test_band_ordering(self, synthetic_engineless):
        db, dataset, model = synthetic_engineless
        completed = IncompletenessJoin(model, seed=0).run()
        band = ConfidenceEstimator(model, completed).count_fraction("b", "v0")
        assert band.lower <= band.estimate <= band.upper

    def test_higher_confidence_wider(self, synthetic_engineless):
        db, dataset, model = synthetic_engineless
        completed = IncompletenessJoin(model, seed=0).run()
        narrow = ConfidenceEstimator(model, completed, 0.8).count_fraction("b", "v0")
        wide = ConfidenceEstimator(model, completed, 0.99).count_fraction("b", "v0")
        assert wide.width >= narrow.width

    def test_continuous_needs_average(self, synthetic_engineless):
        db, dataset, model = synthetic_engineless
        completed = IncompletenessJoin(model, seed=0).run()
        est = ConfidenceEstimator(model, completed)
        with pytest.raises(TypeError):
            est.average("b")

    def test_average_band_on_housing(self, housing_engine):
        db, dataset, engine = housing_engine
        choice = engine.select_model("apartment")
        completed = engine.completed_join(choice.model)
        band = ConfidenceEstimator(choice.model, completed).average("price")
        assert band.lower <= band.estimate <= band.upper
        assert band.theoretical_min <= band.lower
        assert band.upper <= band.theoretical_max

    def test_total_band_scales_average(self, housing_engine):
        db, dataset, engine = housing_engine
        choice = engine.select_model("apartment")
        completed = engine.completed_join(choice.model)
        est = ConfidenceEstimator(choice.model, completed)
        avg = est.average("price")
        total = est.total("price")
        weight_sum = completed.result.effective_weights().sum()
        assert total.estimate == pytest.approx(avg.estimate * weight_sum)

    def test_synthesis_ratio(self, synthetic_engineless):
        _, dataset, model = synthetic_engineless
        completed = IncompletenessJoin(model, seed=0).run()
        ratio = ConfidenceEstimator(model, completed).synthesis_ratio()
        assert 0.2 < ratio < 0.8  # half the tuples were removed

    def test_invalid_confidence_level(self, synthetic_engineless):
        _, __, model = synthetic_engineless
        completed = IncompletenessJoin(model, seed=0).run()
        with pytest.raises(ValueError):
            ConfidenceEstimator(model, completed, confidence=0.4)
