"""Tests for the deep-sets evidence tree encoder (SSAR substrate)."""

import numpy as np
import pytest

from repro.nn import EvidenceTreeEncoder, TreeNodeBatch, TreeNodeSpec


def flat_spec(name="children", vocabs=(4,)):
    return TreeNodeSpec(name=name, vocab_sizes=list(vocabs))


def make_encoder(specs, seed=0, embed_dim=4, node_dim=6):
    return EvidenceTreeEncoder(specs, embed_dim=embed_dim, node_dim=node_dim,
                               rng=np.random.default_rng(seed))


class TestTreeNodeBatch:
    def test_validates_alignment(self):
        with pytest.raises(ValueError):
            TreeNodeBatch(values=np.zeros((3, 2)), parent_ids=np.zeros(2, dtype=int))

    def test_validates_rank(self):
        with pytest.raises(ValueError):
            TreeNodeBatch(values=np.zeros(3), parent_ids=np.zeros(3, dtype=int))

    def test_spec_all_names(self):
        spec = TreeNodeSpec("a", [2], children=[TreeNodeSpec("b", [3])])
        assert spec.all_names() == ["a", "b"]


class TestEncoderBasics:
    def test_output_shape(self):
        enc = make_encoder([flat_spec()])
        batch = TreeNodeBatch(values=np.array([[0], [1], [2]]),
                              parent_ids=np.array([0, 0, 1]))
        out = enc({"children": batch}, batch_size=3)
        assert out.shape == (3, enc.context_dim)

    def test_missing_relation_treated_as_empty(self):
        enc = make_encoder([flat_spec()])
        out = enc({}, batch_size=2)
        assert out.shape == (2, enc.context_dim)
        # Both rows identical (the learned "no children" encoding).
        np.testing.assert_allclose(out.numpy()[0], out.numpy()[1])

    def test_empty_and_nonempty_differ(self):
        enc = make_encoder([flat_spec()])
        batch = TreeNodeBatch(values=np.array([[1], [2]]), parent_ids=np.array([0, 0]))
        out = enc({"children": batch}, batch_size=2).numpy()
        assert not np.allclose(out[0], out[1])

    def test_duplicate_spec_names_rejected(self):
        with pytest.raises(ValueError):
            make_encoder([flat_spec("x"), flat_spec("x")])

    def test_no_specs_rejected(self):
        with pytest.raises(ValueError):
            make_encoder([])


class TestPermutationInvariance:
    def test_child_order_does_not_matter(self):
        enc = make_encoder([flat_spec(vocabs=(5, 3))], seed=1)
        values = np.array([[0, 1], [2, 2], [4, 0]])
        parents = np.array([0, 0, 0])
        out1 = enc({"children": TreeNodeBatch(values, parents)}, 1).numpy()
        perm = np.array([2, 0, 1])
        out2 = enc({"children": TreeNodeBatch(values[perm], parents)}, 1).numpy()
        np.testing.assert_allclose(out1, out2, atol=1e-12)

    def test_multiset_sensitivity(self):
        # Duplicated children must change the encoding (sum, not mean/max).
        enc = make_encoder([flat_spec()], seed=2)
        single = TreeNodeBatch(np.array([[1]]), np.array([0]))
        double = TreeNodeBatch(np.array([[1], [1]]), np.array([0, 0]))
        out1 = enc({"children": single}, 1).numpy()
        out2 = enc({"children": double}, 1).numpy()
        assert not np.allclose(out1, out2)


class TestRecursiveTrees:
    def nested_spec(self):
        return TreeNodeSpec("school", [3], children=[TreeNodeSpec("teacher", [4])])

    def test_grandchildren_affect_output(self):
        enc = make_encoder([self.nested_spec()], seed=3)
        school = TreeNodeBatch(np.array([[1]]), np.array([0]))
        school_with_teacher = TreeNodeBatch(
            np.array([[1]]), np.array([0]),
            children={"teacher": TreeNodeBatch(np.array([[2]]), np.array([0]))},
        )
        out_plain = enc({"school": school}, 1).numpy()
        out_nested = enc({"school": school_with_teacher}, 1).numpy()
        assert not np.allclose(out_plain, out_nested)

    def test_grandchild_alignment(self):
        # Two schools; teacher attached to the second school only.
        enc = make_encoder([self.nested_spec()], seed=4)
        teacher = TreeNodeBatch(np.array([[1]]), np.array([1]))
        schools = TreeNodeBatch(
            np.array([[0], [0]]), np.array([0, 1]),
            children={"teacher": teacher},
        )
        out = enc({"school": schools}, 2).numpy()
        assert not np.allclose(out[0], out[1])


class TestGradients:
    def test_all_parameters_receive_gradients(self):
        spec = TreeNodeSpec("school", [3], children=[TreeNodeSpec("teacher", [4])])
        enc = make_encoder([spec], seed=5)
        batch = TreeNodeBatch(
            np.array([[1], [2]]), np.array([0, 1]),
            children={"teacher": TreeNodeBatch(np.array([[0], [3]]), np.array([0, 1]))},
        )
        out = enc({"school": batch}, 2)
        (out * out).sum().backward()
        grads = [p.grad for p in enc.parameters()]
        assert all(g is not None for g in grads)
        assert any(np.abs(g).sum() > 0 for g in grads)

    def test_multiple_relations_concat(self):
        enc = make_encoder([flat_spec("a", (2,)), flat_spec("b", (2,))], seed=6)
        out = enc({}, batch_size=3)
        assert out.shape == (3, 2 * enc.node_dim)
