"""Unit and property tests for the autograd engine (repro.nn.tensor)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor, concat
from repro.nn import functional as F

from helpers import numeric_grad


def check_gradient(build_loss, x0: np.ndarray, atol: float = 1e-5):
    """Compare autograd gradient of build_loss(Tensor) with finite differences."""
    t = Tensor(np.array(x0, copy=True), requires_grad=True)
    loss = build_loss(t)
    loss.backward()
    expected = numeric_grad(lambda arr: build_loss(Tensor(arr)).item(), np.array(x0, copy=True))
    np.testing.assert_allclose(t.grad, expected, atol=atol, rtol=1e-4)


class TestBasicOps:
    def test_add_forward(self):
        out = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        np.testing.assert_allclose(out.numpy(), [4.0, 6.0])

    def test_add_grad(self):
        check_gradient(lambda t: (t + t * 2.0).sum(), np.array([1.0, -2.0, 3.0]))

    def test_mul_grad(self):
        check_gradient(lambda t: (t * t).sum(), np.array([1.5, -0.5]))

    def test_sub_and_neg(self):
        out = Tensor([5.0]) - Tensor([3.0])
        np.testing.assert_allclose(out.numpy(), [2.0])
        check_gradient(lambda t: (-t).sum(), np.array([2.0, 3.0]))

    def test_div_grad(self):
        check_gradient(lambda t: (t / 2.0).sum(), np.array([1.0, 4.0]))
        check_gradient(lambda t: (1.0 / t).sum(), np.array([1.0, 4.0]))

    def test_pow_grad(self):
        check_gradient(lambda t: (t ** 3.0).sum(), np.array([1.2, 0.7]))

    def test_matmul_forward(self):
        a = Tensor(np.eye(2))
        b = Tensor([[1.0, 2.0], [3.0, 4.0]])
        np.testing.assert_allclose((a @ b).numpy(), b.numpy())

    def test_matmul_grad_left(self):
        rng = np.random.default_rng(0)
        w = rng.normal(size=(3, 2))
        check_gradient(lambda t: (t @ Tensor(w)).sum(), rng.normal(size=(4, 3)))

    def test_matmul_grad_right(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(4, 3))
        check_gradient(lambda t: (Tensor(x) @ t).sum(), rng.normal(size=(3, 2)))

    def test_scalar_right_ops(self):
        t = Tensor([2.0])
        np.testing.assert_allclose((3.0 - t).numpy(), [1.0])
        np.testing.assert_allclose((3.0 + t).numpy(), [5.0])
        np.testing.assert_allclose((3.0 * t).numpy(), [6.0])


class TestBroadcasting:
    def test_bias_broadcast_grad(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(5, 3))
        check_gradient(lambda b: (Tensor(x) + b).sum(), rng.normal(size=(3,)))

    def test_scalar_broadcast_grad(self):
        check_gradient(lambda t: (t * np.array([[1.0, 2.0], [3.0, 4.0]])).sum(),
                       np.array(2.0))

    def test_keepdims_broadcast(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(4, 3))
        check_gradient(lambda t: (t * t.sum(axis=1, keepdims=True)).sum(), x)


class TestReductionsAndShapes:
    def test_sum_axis(self):
        t = Tensor(np.arange(6.0).reshape(2, 3))
        np.testing.assert_allclose(t.sum(axis=0).numpy(), [3.0, 5.0, 7.0])
        np.testing.assert_allclose(t.sum(axis=1).numpy(), [3.0, 12.0])

    def test_mean_grad(self):
        check_gradient(lambda t: t.mean(), np.array([1.0, 2.0, 3.0, 4.0]))

    def test_mean_axis_grad(self):
        rng = np.random.default_rng(4)
        check_gradient(lambda t: t.mean(axis=0).sum(), rng.normal(size=(3, 2)))

    def test_reshape_grad(self):
        check_gradient(lambda t: (t.reshape(2, 2) * 2.0).sum(), np.arange(4.0))

    def test_transpose_grad(self):
        rng = np.random.default_rng(5)
        w = rng.normal(size=(2, 3))
        check_gradient(lambda t: (t.T * w).sum(), rng.normal(size=(3, 2)))

    def test_getitem_slice_grad(self):
        check_gradient(lambda t: t[1:3].sum(), np.arange(5.0))

    def test_getitem_fancy_grad(self):
        idx = np.array([0, 0, 2])

        def loss(t):
            return t[idx].sum()

        t = Tensor(np.arange(3.0), requires_grad=True)
        loss(t).backward()
        np.testing.assert_allclose(t.grad, [2.0, 0.0, 1.0])

    def test_concat_grad(self):
        rng = np.random.default_rng(6)
        a0 = rng.normal(size=(2, 2))
        b0 = rng.normal(size=(2, 3))
        a = Tensor(a0, requires_grad=True)
        b = Tensor(b0, requires_grad=True)
        out = concat([a, b], axis=1)
        assert out.shape == (2, 5)
        (out * out).sum().backward()
        np.testing.assert_allclose(a.grad, 2 * a0)
        np.testing.assert_allclose(b.grad, 2 * b0)

    def test_concat_axis0(self):
        a = Tensor(np.ones((1, 2)), requires_grad=True)
        b = Tensor(np.ones((3, 2)), requires_grad=True)
        out = concat([a, b], axis=0)
        assert out.shape == (4, 2)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((1, 2)))


class TestNonlinearities:
    def test_relu(self):
        t = Tensor([-1.0, 0.0, 2.0])
        np.testing.assert_allclose(t.relu().numpy(), [0.0, 0.0, 2.0])

    def test_relu_grad(self):
        check_gradient(lambda t: t.relu().sum(), np.array([-1.0, 0.5, 2.0]))

    def test_tanh_grad(self):
        check_gradient(lambda t: t.tanh().sum(), np.array([-0.3, 0.8]))

    def test_sigmoid_grad(self):
        check_gradient(lambda t: t.sigmoid().sum(), np.array([-0.3, 0.8]))

    def test_exp_log_grad(self):
        check_gradient(lambda t: t.exp().sum(), np.array([0.1, -0.2]))
        check_gradient(lambda t: t.log().sum(), np.array([0.5, 2.0]))


class TestBackwardSemantics:
    def test_grad_accumulates_over_backward_calls(self):
        t = Tensor([1.0], requires_grad=True)
        (t * 2.0).backward()
        (t * 2.0).backward()
        np.testing.assert_allclose(t.grad, [4.0])

    def test_reused_node_grad(self):
        # y = x*x + x ; dy/dx = 2x + 1
        t = Tensor([3.0], requires_grad=True)
        (t * t + t).backward()
        np.testing.assert_allclose(t.grad, [7.0])

    def test_diamond_graph(self):
        # z = (x+x) * (x*2) = 4x^2, dz/dx = 8x
        t = Tensor([2.0], requires_grad=True)
        a = t + t
        b = t * 2.0
        (a * b).backward()
        np.testing.assert_allclose(t.grad, [16.0])

    def test_no_grad_without_flag(self):
        t = Tensor([1.0])
        out = t * 3.0
        out.backward()
        assert t.grad is None

    def test_detach_cuts_graph(self):
        t = Tensor([1.0], requires_grad=True)
        (t.detach() * 5.0).backward()
        assert t.grad is None

    def test_deep_chain_no_recursion(self):
        # Iterative topo-sort should handle graphs deeper than any recursion limit.
        t = Tensor([1.0], requires_grad=True)
        out = t
        for _ in range(3000):
            out = out + 0.0
        out.backward()
        np.testing.assert_allclose(t.grad, [1.0])


class TestPropertyBased:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(-5, 5), min_size=1, max_size=6))
    def test_sum_linearity(self, values):
        t = Tensor(np.array(values), requires_grad=True)
        (t.sum() * 3.0).backward()
        np.testing.assert_allclose(t.grad, np.full(len(values), 3.0))

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 5), st.integers(1, 5))
    def test_matmul_shapes(self, n, m):
        a = Tensor(np.ones((n, m)))
        b = Tensor(np.ones((m, 2)))
        assert (a @ b).shape == (n, 2)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.floats(-3, 3), min_size=2, max_size=8))
    def test_softmax_normalizes(self, values):
        probs = F.softmax(np.array([values]))
        np.testing.assert_allclose(probs.sum(), 1.0, atol=1e-9)
        assert (probs >= 0).all()


class TestErrors:
    def test_embedding_requires_int(self):
        from repro.nn.layers import Embedding
        emb = Embedding(4, 2, np.random.default_rng(0))
        with pytest.raises(TypeError):
            emb(np.array([0.5]))
