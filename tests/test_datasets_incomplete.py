"""Tests for dataset generators and the biased-removal machinery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import (
    HousingConfig,
    MoviesConfig,
    SyntheticConfig,
    generate_housing,
    generate_movies,
    generate_synthetic,
)
from repro.incomplete import (
    MCAR,
    MAR,
    FKCascade,
    IncompleteDataset,
    MARParent,
    MNARSelfMasking,
    RareValue,
    RemovalSpec,
    ScenarioSpec,
    TemporalRecent,
    ValueThreshold,
    derive_selection_scenario,
    make_incomplete,
    removal_mask,
)
from repro.relational import observed_tuple_factors
from repro.relational.tuple_factors import TF_UNKNOWN


class TestSyntheticGenerator:
    def test_shapes_and_fks(self):
        db = generate_synthetic(SyntheticConfig(num_parents=200, seed=1))
        assert len(db.table("ta")) == 200
        assert db.validate_references() == []

    def test_full_predictability_is_functional(self):
        db = generate_synthetic(SyntheticConfig(predictability=1.0, seed=2))
        from repro.query import join_tables
        joined = join_tables(db, ["tb", "ta"])
        agree = (joined.resolve("ta.a") == joined.resolve("tb.b")).mean()
        assert agree == 1.0

    def test_zero_predictability_is_noise(self):
        cfg = SyntheticConfig(predictability=0.0, domain_size=8, seed=3)
        db = generate_synthetic(cfg)
        from repro.query import join_tables
        joined = join_tables(db, ["tb", "ta"])
        agree = (joined.resolve("ta.a") == joined.resolve("tb.b")).mean()
        assert agree < 0.25  # chance level is 1/8

    def test_predictability_monotone(self):
        from repro.query import join_tables
        rates = []
        for p in (0.2, 0.6, 1.0):
            db = generate_synthetic(SyntheticConfig(predictability=p, seed=4))
            joined = join_tables(db, ["tb", "ta"])
            rates.append((joined.resolve("ta.a") == joined.resolve("tb.b")).mean())
        assert rates[0] < rates[1] < rates[2]

    def test_skew_concentrates_mass(self):
        flat = generate_synthetic(SyntheticConfig(skew=0.0, seed=5))
        skewed = generate_synthetic(SyntheticConfig(skew=2.5, seed=5))
        top_flat = max(np.unique(flat.table("ta")["a"], return_counts=True)[1])
        top_skew = max(np.unique(skewed.table("ta")["a"], return_counts=True)[1])
        assert top_skew > 2 * top_flat

    def test_fanout_coherence(self):
        cfg = SyntheticConfig(predictability=0.0, fan_out_predictability=1.0, seed=6)
        db = generate_synthetic(cfg)
        tb = db.table("tb")
        parents = tb["ta_id"]
        values = tb["b"]
        # All siblings share one value when fan-out predictability is 1.
        for parent in np.unique(parents)[:50]:
            group = values[parents == parent]
            assert len(set(group.tolist())) <= 1 or len(group) == 0

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            SyntheticConfig(predictability=1.5)
        with pytest.raises(ValueError):
            SyntheticConfig(skew=-1.0)
        with pytest.raises(ValueError):
            SyntheticConfig(domain_size=1)
        with pytest.raises(ValueError):
            SyntheticConfig(fan_out_predictability=-0.1)


class TestHousingGenerator:
    @pytest.fixture(scope="class")
    def db(self):
        return generate_housing(HousingConfig(seed=0))

    def test_schema(self, db):
        assert set(db.table_names()) == {"neighborhood", "apartment", "landlord"}
        assert db.validate_references() == []

    def test_price_correlates_with_density(self, db):
        from repro.query import join_tables
        joined = join_tables(db, ["apartment", "neighborhood"])
        corr = np.corrcoef(
            np.log(joined.resolve("pop_density").astype(float)),
            np.log(joined.resolve("price").astype(float)),
        )[0, 1]
        assert corr > 0.3

    def test_entire_homes_cost_more(self, db):
        apt = db.table("apartment")
        entire = apt["price"][apt["room_type"] == "Entire home/apt"].mean()
        shared = apt["price"][apt["room_type"] == "Shared room"].mean()
        assert entire > 1.5 * shared

    def test_professional_landlords_respond_better(self, db):
        ll = db.table("landlord")
        fast = ll["landlord_response_rate"][ll["landlord_response_time"] <= 1].mean()
        slow = ll["landlord_response_rate"][ll["landlord_response_time"] >= 3].mean()
        assert fast > slow

    def test_scale_knob(self):
        small = generate_housing(HousingConfig(num_neighborhoods=20,
                                               num_landlords=50,
                                               apartments_per_neighborhood=5.0))
        assert len(small.table("neighborhood")) == 20
        assert len(small.table("apartment")) < 400


class TestMoviesGenerator:
    @pytest.fixture(scope="class")
    def db(self):
        return generate_movies(MoviesConfig(seed=0))

    def test_schema(self, db):
        expected = {"movie", "director", "actor", "company",
                    "movie_director", "movie_actor", "movie_company"}
        assert set(db.table_names()) == expected
        assert db.validate_references() == []

    def test_every_movie_has_a_company(self, db):
        fk = db.fk_between("movie_company", "movie")
        tfs = observed_tuple_factors(db, fk)
        assert tfs.min() >= 1

    def test_country_studio_correlation(self, db):
        from repro.query import join_tables
        joined = join_tables(db, ["movie", "movie_company", "company"])
        country = joined.resolve("movie.country")
        code = joined.resolve("company.country_code")
        mapping = {"USA": "[us]", "UK": "[gb]", "France": "[fr]",
                   "Germany": "[de]", "India": "[in]", "Japan": "[jp]"}
        agree = np.mean([mapping[c] == k for c, k in zip(country, code)])
        assert agree > 0.5

    def test_director_era_correlation(self, db):
        from repro.query import join_tables
        joined = join_tables(db, ["movie", "movie_director", "director"])
        corr = np.corrcoef(
            joined.resolve("production_year").astype(float),
            joined.resolve("birth_year").astype(float),
        )[0, 1]
        assert corr > 0.5


class TestRemoval:
    def test_keep_rate_exact(self):
        db = generate_synthetic(SyntheticConfig(seed=7))
        spec = RemovalSpec("tb", "b", keep_rate=0.4, removal_correlation=0.5)
        mask = removal_mask(db.table("tb"), spec, np.random.default_rng(0))
        assert abs(mask.mean() - 0.4) < 0.01

    def test_zero_correlation_unbiased(self):
        db = generate_synthetic(SyntheticConfig(seed=8, num_parents=4000))
        tb = db.table("tb")
        spec = RemovalSpec("tb", "b", keep_rate=0.5, removal_correlation=0.0)
        mask = removal_mask(tb, spec, np.random.default_rng(1))
        uniques, counts_all = np.unique(tb["b"], return_counts=True)
        _, counts_kept = np.unique(tb["b"][mask], return_counts=True)
        fractions = counts_kept / counts_all
        assert fractions.max() - fractions.min() < 0.08

    def test_categorical_bias_grows_with_correlation(self):
        db = generate_synthetic(SyntheticConfig(seed=9, num_parents=3000))
        tb = db.table("tb")
        uniques, counts = np.unique(tb["b"], return_counts=True)
        biased_value = uniques[counts.argmax()]
        base_frac = (tb["b"] == biased_value).mean()
        deltas = []
        for corr in (0.2, 0.8):
            spec = RemovalSpec("tb", "b", keep_rate=0.5, removal_correlation=corr,
                               biased_value=biased_value)
            mask = removal_mask(tb, spec, np.random.default_rng(2))
            kept_frac = (tb["b"][mask] == biased_value).mean()
            deltas.append(base_frac - kept_frac)
        assert deltas[1] > deltas[0] > 0

    def test_continuous_bias_grows_with_correlation(self):
        db = generate_housing(HousingConfig(seed=1))
        apt = db.table("apartment")
        true_mean = apt["price"].mean()
        biases = []
        for corr in (0.2, 0.8):
            spec = RemovalSpec("apartment", "price", keep_rate=0.5,
                               removal_correlation=corr)
            mask = removal_mask(apt, spec, np.random.default_rng(3))
            biases.append(true_mean - apt["price"][mask].mean())
        # High-value rows removed preferentially: kept mean drops.
        assert biases[1] > biases[0] > 0

    def test_invalid_specs(self):
        with pytest.raises(ValueError):
            RemovalSpec("t", "a", keep_rate=0.0, removal_correlation=0.5)
        with pytest.raises(ValueError):
            RemovalSpec("t", "a", keep_rate=0.5, removal_correlation=1.2)

    def test_keep_rate_one_removes_nothing(self):
        db = generate_synthetic(SyntheticConfig(seed=10))
        spec = RemovalSpec("tb", "b", keep_rate=1.0, removal_correlation=0.5)
        mask = removal_mask(db.table("tb"), spec, np.random.default_rng(0))
        assert mask.all()


class TestMakeIncomplete:
    def test_basic_structure(self):
        db = generate_housing(HousingConfig(seed=2))
        dataset = make_incomplete(
            db,
            [RemovalSpec("apartment", "price", 0.5, 0.5)],
            tf_keep_rate=0.3,
            seed=0,
        )
        assert isinstance(dataset, IncompleteDataset)
        assert dataset.annotation.is_complete("neighborhood")
        assert not dataset.annotation.is_complete("apartment")
        assert abs(dataset.kept_fraction("apartment") - 0.5) < 0.01
        assert dataset.kept_fraction("landlord") == 1.0

    def test_tf_annotation_uses_true_counts(self):
        db = generate_housing(HousingConfig(seed=3))
        dataset = make_incomplete(
            db, [RemovalSpec("apartment", "price", 0.4, 0.5)],
            tf_keep_rate=0.5, seed=1,
        )
        fk = db.fk_between("apartment", "neighborhood")
        annotated = dataset.annotation.tuple_factors_for(
            fk, len(dataset.incomplete.table("neighborhood"))
        )
        true_tfs = observed_tuple_factors(db, fk)
        known = annotated != TF_UNKNOWN
        assert 0.3 < known.mean() < 0.7
        np.testing.assert_array_equal(annotated[known], true_tfs[known])

    def test_dangling_links_removed(self):
        db = generate_movies(MoviesConfig(seed=4))
        dataset = make_incomplete(
            db, [RemovalSpec("movie", "production_year", 0.5, 0.5)],
            tf_keep_rate=0.2, seed=2,
        )
        assert not dataset.annotation.is_complete("movie_company")
        assert not dataset.annotation.is_complete("movie_actor")
        assert dataset.incomplete.validate_references() == []
        # Link tables shrank.
        assert (len(dataset.incomplete.table("movie_company"))
                < len(db.table("movie_company")))

    def test_duplicate_specs_rejected(self):
        db = generate_housing(HousingConfig(seed=5))
        with pytest.raises(ValueError):
            make_incomplete(db, [
                RemovalSpec("apartment", "price", 0.5, 0.5),
                RemovalSpec("apartment", "room_type", 0.5, 0.5),
            ])

    def test_complete_db_untouched(self):
        db = generate_housing(HousingConfig(seed=6))
        rows_before = len(db.table("apartment"))
        make_incomplete(db, [RemovalSpec("apartment", "price", 0.3, 0.8)])
        assert len(db.table("apartment")) == rows_before

    @settings(max_examples=10, deadline=None)
    @given(st.floats(0.2, 0.9), st.floats(0.0, 1.0))
    def test_keep_rate_respected_property(self, keep, corr):
        db = generate_synthetic(SyntheticConfig(seed=11, num_parents=300))
        dataset = make_incomplete(
            db, [RemovalSpec("tb", "b", keep, corr)], seed=3
        )
        assert abs(dataset.kept_fraction("tb") - keep) < 0.05


class TestSpecValidation:
    """Negative paths: bad rates, unknown tables/attributes, bad cascades."""

    def test_bad_keep_rates(self):
        for keep in (0.0, -0.2, 1.3):
            with pytest.raises(ValueError, match="keep_rate"):
                RemovalSpec("t", "a", keep_rate=keep, removal_correlation=0.5)

    def test_bad_correlations(self):
        for corr in (-0.1, 1.2):
            with pytest.raises(ValueError, match="removal_correlation"):
                RemovalSpec("t", "a", keep_rate=0.5, removal_correlation=corr)

    def test_spec_needs_attribute_or_mechanism(self):
        with pytest.raises(ValueError, match="biased_attribute.*mechanism"):
            RemovalSpec("t", keep_rate=0.5)

    def test_unknown_table_raises_clearly(self):
        db = generate_synthetic(SyntheticConfig(num_parents=100, seed=0))
        with pytest.raises(ValueError, match="unknown table 'nope'"):
            make_incomplete(db, [RemovalSpec("nope", "b", 0.5, 0.5)])

    def test_unknown_attribute_raises_clearly(self):
        db = generate_synthetic(SyntheticConfig(num_parents=100, seed=0))
        with pytest.raises(ValueError, match="unknown attribute 'zz'"):
            make_incomplete(db, [RemovalSpec("tb", "zz", 0.5, 0.5)])

    def test_mechanism_attribute_validated(self):
        db = generate_synthetic(SyntheticConfig(num_parents=100, seed=0))
        spec = RemovalSpec("tb", keep_rate=0.5,
                           mechanism=MAR(attribute="zz", correlation=0.5))
        with pytest.raises(ValueError, match="no attribute 'zz'"):
            make_incomplete(db, [spec])

    def test_mechanism_fk_validated(self):
        db = generate_synthetic(SyntheticConfig(num_parents=100, seed=0))
        spec = RemovalSpec("ta", keep_rate=0.5,
                           mechanism=FKCascade(parent_table="tb"))
        with pytest.raises(ValueError, match="no foreign key"):
            make_incomplete(db, [spec])

    def test_threshold_rejects_categorical(self):
        db = generate_synthetic(SyntheticConfig(num_parents=100, seed=0))
        spec = RemovalSpec("tb", keep_rate=0.5,
                           mechanism=ValueThreshold(attribute="b"))
        with pytest.raises(ValueError, match="must be continuous"):
            make_incomplete(db, [spec])

    def test_rare_value_rejects_continuous(self):
        db = generate_housing(HousingConfig(seed=0, num_neighborhoods=20,
                                            num_landlords=50,
                                            apartments_per_neighborhood=4.0))
        spec = RemovalSpec("apartment", keep_rate=0.5,
                           mechanism=RareValue(attribute="price"))
        with pytest.raises(ValueError, match="must be categorical"):
            make_incomplete(db, [spec])

    def test_mechanism_parameter_ranges(self):
        with pytest.raises(ValueError, match="correlation"):
            MAR(attribute="a", correlation=1.5)
        with pytest.raises(ValueError, match="sharpness"):
            MNARSelfMasking(attribute="a", sharpness=-0.1)
        with pytest.raises(ValueError, match="quantile"):
            ValueThreshold(attribute="a", quantile=1.0)
        with pytest.raises(ValueError, match="softness"):
            TemporalRecent(time_attribute="a", softness=2.0)

    def test_with_strength_updates_the_bias_knob(self):
        assert MAR(attribute="a", correlation=0.2).with_strength(0.9).correlation == 0.9
        assert MARParent(parent_table="p", attribute="a",
                         correlation=0.2).with_strength(0.9).correlation == 0.9
        assert MNARSelfMasking(attribute="a",
                               sharpness=0.2).with_strength(0.9).sharpness == 0.9
        assert RareValue(attribute="a",
                         correlation=0.2).with_strength(0.9).correlation == 0.9
        recent = TemporalRecent(time_attribute="a", softness=0.5)
        assert recent.with_strength(0.9).softness == pytest.approx(0.1)
        # Mechanisms without a strength knob are unchanged.
        assert MCAR().with_strength(0.9) == MCAR()
        cascade = FKCascade(parent_table="p")
        assert cascade.with_strength(0.9) is cascade

    def test_mcar_ignores_everything(self):
        db = generate_synthetic(SyntheticConfig(num_parents=400, seed=1))
        spec = RemovalSpec("tb", keep_rate=0.5, mechanism=MCAR())
        dataset = make_incomplete(db, [spec], seed=2)
        assert abs(dataset.kept_fraction("tb") - 0.5) < 0.01


class TestScenarioValidation:
    def _spec(self, table="tb", mechanism=None):
        if mechanism is not None:
            return RemovalSpec(table, keep_rate=0.5, mechanism=mechanism)
        return RemovalSpec(table, "b", 0.5, 0.5)

    def test_empty_scenario_rejected(self):
        with pytest.raises(ValueError, match="no removal specs"):
            ScenarioSpec(name="empty", dataset="synthetic", removals=())

    def test_duplicate_tables_rejected(self):
        with pytest.raises(ValueError, match="multiple removal specs"):
            ScenarioSpec(name="dup", dataset="synthetic",
                         removals=(self._spec(), self._spec()))

    def test_bad_tf_keep_rate_rejected(self):
        with pytest.raises(ValueError, match="tf_keep_rate"):
            ScenarioSpec(name="tf", dataset="synthetic",
                         removals=(self._spec(),), tf_keep_rate=1.5)

    def test_cyclic_cascade_rejected(self):
        removals = (
            self._spec("ta", FKCascade(parent_table="tb")),
            self._spec("tb", FKCascade(parent_table="ta")),
        )
        with pytest.raises(ValueError, match="cyclic cascade"):
            ScenarioSpec(name="cycle", dataset="synthetic", removals=removals)

    def test_acyclic_cascade_chain_accepted(self):
        removals = (
            self._spec("tb", FKCascade(parent_table="ta")),
        )
        scenario = ScenarioSpec(name="chain", dataset="synthetic",
                                removals=removals)
        assert scenario.mechanism_names() == ("fk_cascade",)

    def test_validate_reports_unknown_dangling_parent(self):
        db = generate_synthetic(SyntheticConfig(num_parents=100, seed=0))
        scenario = ScenarioSpec(
            name="bad-dangle", dataset="synthetic",
            removals=(self._spec(),), dangling_parents=("ghost",),
        )
        with pytest.raises(ValueError, match="unknown tables.*ghost"):
            scenario.validate(db)

    def test_validate_reports_unknown_spec_table(self):
        db = generate_synthetic(SyntheticConfig(num_parents=100, seed=0))
        scenario = ScenarioSpec(
            name="bad-table", dataset="synthetic",
            removals=(self._spec("ghost"),),
        )
        with pytest.raises(ValueError, match="unknown table 'ghost'"):
            scenario.validate(db)

    def test_mar_parent_requires_fk(self):
        db = generate_synthetic(SyntheticConfig(num_parents=100, seed=0))
        scenario = ScenarioSpec(
            name="no-fk", dataset="synthetic",
            removals=(self._spec("ta", MARParent(parent_table="tb",
                                                 attribute="b")),),
        )
        with pytest.raises(ValueError, match="no foreign key"):
            scenario.validate(db)

    def test_instantiate_validates_first(self):
        db = generate_synthetic(SyntheticConfig(num_parents=100, seed=0))
        scenario = ScenarioSpec(
            name="late", dataset="synthetic",
            removals=(RemovalSpec("tb", "zz", 0.5, 0.5),),
        )
        with pytest.raises(ValueError, match="unknown attribute"):
            scenario.instantiate(db)


class TestDerivedScenario:
    def test_second_level_removal(self):
        db = generate_housing(HousingConfig(seed=7))
        first = make_incomplete(
            db, [RemovalSpec("apartment", "price", 0.6, 0.5)], seed=4
        )
        second = derive_selection_scenario(first, seed=5)
        # "Complete" of the derived scenario is the first-level incomplete db.
        assert second.complete is first.incomplete
        n_first = len(first.incomplete.table("apartment"))
        n_second = len(second.incomplete.table("apartment"))
        assert abs(n_second / n_first - 0.6) < 0.05
