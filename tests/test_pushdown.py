"""Unit tests for the predicate-pushdown planner (:mod:`repro.query.pushdown`).

The planner classifies each query filter against a completion path as
pre-walk (prunes root evidence rows before chunk scheduling), mid-walk
(prunes partial walk states after its table's hop) or post-hoc (evaluated on
the final state), and bumps prune slots past dangling-FK hops so parked-row
resolution stays plan-independent.  These tests pin the classification, the
fingerprint algebra the partial cache keys on, and the dangling detection.
"""

import numpy as np
import pytest

from repro.datasets import HousingConfig, generate_housing
from repro.query import (
    Aggregate,
    AggregateKind,
    Filter,
    FilterOp,
    Query,
    dangling_hop_slots,
    plan_pushdown,
)
from repro.relational import ColumnKind, Database, ForeignKey, Table

K, C, N = ColumnKind.KEY, ColumnKind.CATEGORICAL, ColumnKind.CONTINUOUS


@pytest.fixture(scope="module")
def housing():
    return generate_housing(HousingConfig(seed=0, num_neighborhoods=20,
                                          num_landlords=40,
                                          apartments_per_neighborhood=5.0))


def _query(tables, *filters):
    return Query(tables=tuple(tables),
                 aggregate=Aggregate(AggregateKind.COUNT),
                 filters=tuple(filters))


class TestClassification:
    def test_root_filter_is_pre(self, housing):
        query = _query(("neighborhood", "apartment"),
                       Filter("neighborhood.pop_density", FilterOp.GE, 100.0))
        plan = plan_pushdown(housing, ("neighborhood", "apartment"), query)
        assert plan.has_pushdown and plan.has_root_filters
        [pushed] = plan.pushed
        assert pushed.kind == "pre"
        assert pushed.slot == 0 and pushed.prune_slot == 0
        assert plan.counts_by_kind() == {"pre": 1, "mid": 0, "post": 0}

    def test_target_filter_is_post(self, housing):
        query = _query(("neighborhood", "apartment"),
                       Filter("apartment.price", FilterOp.GE, 500.0))
        plan = plan_pushdown(housing, ("neighborhood", "apartment"), query)
        [pushed] = plan.pushed
        assert pushed.kind == "post"
        assert not plan.has_root_filters

    def test_middle_filter_is_mid(self, housing):
        query = _query(("neighborhood", "apartment", "landlord"),
                       Filter("apartment.accommodates", FilterOp.LE, 3.0))
        plan = plan_pushdown(
            housing, ("neighborhood", "apartment", "landlord"), query
        )
        [pushed] = plan.pushed
        assert pushed.kind == "mid"
        assert pushed.slot == 1 and pushed.prune_slot == 1

    def test_unqualified_unique_column_resolves(self, housing):
        query = _query(("neighborhood", "apartment"),
                       Filter("pop_density", FilterOp.GE, 100.0))
        plan = plan_pushdown(housing, ("neighborhood", "apartment"), query)
        [pushed] = plan.pushed
        assert pushed.table == "neighborhood" and pushed.kind == "pre"
        assert not plan.residual

    def test_path_must_cover_query(self, housing):
        query = _query(("neighborhood", "landlord"))
        with pytest.raises(ValueError, match="cover"):
            plan_pushdown(housing, ("neighborhood", "apartment"), query)

    def test_no_filters_means_no_pushdown(self, housing):
        query = _query(("neighborhood", "apartment"))
        plan = plan_pushdown(housing, ("neighborhood", "apartment"), query)
        assert not plan.has_pushdown and not plan.has_root_filters
        assert plan.fingerprint() == ()


class TestFingerprints:
    def test_qualification_spelling_is_canonical(self, housing):
        path = ("neighborhood", "apartment")
        bare = plan_pushdown(housing, path, _query(
            path, Filter("pop_density", FilterOp.GE, 100.0)))
        qualified = plan_pushdown(housing, path, _query(
            path, Filter("neighborhood.pop_density", FilterOp.GE, 100.0)))
        assert bare.fingerprint() == qualified.fingerprint()

    def test_filter_order_is_canonical(self, housing):
        path = ("neighborhood", "apartment")
        f1 = Filter("neighborhood.pop_density", FilterOp.GE, 100.0)
        f2 = Filter("apartment.price", FilterOp.LE, 900.0)
        a = plan_pushdown(housing, path, _query(path, f1, f2))
        b = plan_pushdown(housing, path, _query(path, f2, f1))
        assert a.fingerprint() == b.fingerprint()

    def test_subset_algebra(self, housing):
        path = ("neighborhood", "apartment")
        f1 = Filter("neighborhood.pop_density", FilterOp.GE, 100.0)
        f2 = Filter("apartment.price", FilterOp.LE, 900.0)
        loose = plan_pushdown(housing, path, _query(path, f1))
        strict = plan_pushdown(housing, path, _query(path, f1, f2))
        assert loose.fingerprint_set() < strict.fingerprint_set()
        leftover = strict.filters_not_in(loose.fingerprint_set())
        assert [p.fingerprint() for p in leftover] == [
            p.fingerprint() for p in strict.pushed if p.table == "apartment"
        ]


class TestDangling:
    @pytest.fixture()
    def dangling_db(self):
        parent = Table("p", {"id": np.array([0, 1, 2]),
                             "x": np.array([1.0, 2.0, 3.0])},
                       {"id": K, "x": N})
        child = Table("c", {"id": np.array([0, 1, 2, 3]),
                            "p_id": np.array([0, 1, 5, 5]),
                            "y": np.array([10.0, 20.0, 30.0, 40.0])},
                      {"id": K, "p_id": K, "y": N})
        return Database([parent, child], [ForeignKey("c", "p_id", "p")])

    def test_detects_dangling_hop(self, dangling_db):
        assert dangling_hop_slots(dangling_db, ("c", "p")) == (1,)
        # parent -> child is the fan-out direction; nothing dangles
        assert dangling_hop_slots(dangling_db, ("p", "c")) == ()

    def test_prune_slot_bumped_past_dangling(self, dangling_db):
        # c.y naturally prunes at slot 0, but slot 1 resolves dangling FKs
        # against a shared parked state: pruning earlier would change which
        # parked row becomes the canonical representative.
        query = _query(("c", "p"), Filter("c.y", FilterOp.GE, 25.0))
        plan = plan_pushdown(dangling_db, ("c", "p"), query)
        [pushed] = plan.pushed
        assert pushed.slot == 0 and pushed.prune_slot == 1
        assert pushed.kind == "post"
        assert not plan.has_root_filters

    def test_complete_fk_hop_not_dangling(self, housing):
        assert dangling_hop_slots(
            housing, ("apartment", "neighborhood")) == ()
