"""Tests for the fused training runtime (:mod:`repro.runtime.training`).

The contract under test, per layer:

* **Gradcheck parity** — the hand-derived fused forward+backward matches
  the float64 autograd oracle to machine precision (and within 1e-4
  relative error when run in float32) across randomized layouts: varying
  vocabulary sizes, wide tuple-factor heads, context dimensions, residual
  depths and per-variable loss weights.  Finite differences provide a
  third, engine-independent opinion.
* **Training-loop semantics** — remainder mini-batches fold into their
  predecessor (every row trains each epoch), backends stamp
  :class:`TrainResult`, and the backend knob plumbs from
  :class:`ReStoreConfig` down to ``fit``.
* **Equivalence at the engine level** — fused-trained engines rank the
  same candidates as autograd-trained ones and their snapshots stay
  picklable for the process executors.
"""

import pickle

import numpy as np
import pytest

from repro.core import ModelConfig, ReStore, ReStoreConfig
from repro.core.models import _CompletionModelBase
from repro.core.path_data import TrainingData
from repro.incomplete.registry import make_scenario_dataset
from repro.nn import MLP, Tensor, TrainConfig, batch_bounds, train
from repro.nn import functional as F
from repro.nn.deepsets import EvidenceTreeEncoder, TreeNodeBatch, TreeNodeSpec
from repro.nn.made import ResidualMADE
from repro.runtime import kernels
from repro.runtime.training import (
    FusedResidualMADE,
    FusedTreeEncoder,
    ParameterBuffer,
)

from helpers import numeric_grad_arrays, relative_grad_error

#: The acceptance tolerance of the parity suite (ISSUE 5): fused gradients
#: must match the autograd oracle within 1e-4 relative error.
PARITY_TOL = 1e-4


# ----------------------------------------------------------------------
# Random layout generators
# ----------------------------------------------------------------------

def random_made(rng, context_dim: int = 0) -> ResidualMADE:
    """A MADE with randomized vocabularies, width, depth and embeddings."""
    num_vars = int(rng.integers(2, 6))
    vocab = [int(rng.integers(2, 10)) for _ in range(num_vars)]
    if rng.random() < 0.5:
        # A wide tuple-factor-style head.
        vocab[int(rng.integers(0, num_vars))] = int(rng.integers(20, 45))
    width = int(rng.integers(12, 25))
    depth = int(rng.integers(2, 4))
    return ResidualMADE(
        vocab,
        embed_dim=int(rng.integers(3, 8)),
        hidden=(width,) * depth,
        rng=rng,
        context_dim=context_dim,
    )


def random_batch(rng, made: ResidualMADE):
    """Random codes + positive per-variable weights for one mini-batch."""
    batch = int(rng.integers(3, 18))
    x = np.stack(
        [rng.integers(0, k, size=batch) for k in made.vocab_sizes], axis=1
    )
    weights = {
        i: rng.uniform(0.2, 3.0, size=batch)
        for i in range(made.num_variables)
        if rng.random() < 0.8
    }
    return x, weights


def autograd_reference(made, x, weights, context=None):
    """Loss and named parameter grads (plus context grad) from the oracle."""
    made.zero_grad()
    ctx_t = None
    if context is not None:
        ctx_t = Tensor(context, requires_grad=True)
    loss = made.nll(x, context=ctx_t, variable_weights=weights or None)
    loss.backward()
    grads = {name: p.grad.copy() for name, p in made.named_parameters()}
    d_context = None if ctx_t is None else ctx_t.grad.copy()
    return loss.item(), grads, d_context


# ----------------------------------------------------------------------
# Gradcheck parity: fused vs autograd vs finite differences
# ----------------------------------------------------------------------

class TestGradcheckMADE:
    @pytest.mark.parametrize("seed", range(10))
    def test_fused_matches_autograd_float64(self, seed):
        rng = np.random.default_rng(seed)
        made = random_made(rng)
        x, weights = random_batch(rng, made)
        ref_loss, ref_grads, _ = autograd_reference(made, x, weights)

        buffer = ParameterBuffer(made, dtype=np.float64)
        fused = FusedResidualMADE(made, buffer)
        loss, _ = fused.loss_and_grad(x, None, weights or None)

        assert loss == pytest.approx(ref_loss, rel=1e-12)
        for name in buffer.names:
            err = relative_grad_error(buffer.grad_view(name), ref_grads[name])
            assert err < 1e-10, f"layout {seed}, parameter {name}: {err}"

    @pytest.mark.parametrize("seed", range(10))
    def test_fused_float32_within_parity_tolerance(self, seed):
        """The production dtype stays within the 1e-4 acceptance band."""
        rng = np.random.default_rng(100 + seed)
        made = random_made(rng)
        x, weights = random_batch(rng, made)
        ref_loss, ref_grads, _ = autograd_reference(made, x, weights)

        buffer = ParameterBuffer(made, dtype=np.float32)
        fused = FusedResidualMADE(made, buffer)
        loss, _ = fused.loss_and_grad(x, None, weights or None)

        assert loss == pytest.approx(ref_loss, rel=1e-4)
        for name in buffer.names:
            err = relative_grad_error(buffer.grad_view(name), ref_grads[name])
            assert err < PARITY_TOL, f"layout {seed}, parameter {name}: {err}"

    @pytest.mark.parametrize("seed", range(6))
    def test_context_gradient_matches_autograd(self, seed):
        rng = np.random.default_rng(200 + seed)
        context_dim = int(rng.integers(2, 9))
        made = random_made(rng, context_dim=context_dim)
        x, weights = random_batch(rng, made)
        context = rng.normal(size=(len(x), context_dim))
        ref_loss, ref_grads, ref_dctx = autograd_reference(
            made, x, weights, context
        )

        buffer = ParameterBuffer(made, dtype=np.float64)
        fused = FusedResidualMADE(made, buffer)
        loss, d_context = fused.loss_and_grad(x, context, weights or None)

        assert loss == pytest.approx(ref_loss, rel=1e-12)
        assert relative_grad_error(d_context, ref_dctx) < 1e-10
        for name in buffer.names:
            assert relative_grad_error(
                buffer.grad_view(name), ref_grads[name]
            ) < 1e-10, name

    def test_fused_matches_finite_differences(self):
        """Engine-independent oracle: central differences on the buffer."""
        rng = np.random.default_rng(7)
        made = ResidualMADE([3, 4], embed_dim=3, hidden=(8, 8), rng=rng)
        x = np.stack([rng.integers(0, 3, size=5), rng.integers(0, 4, size=5)],
                     axis=1)
        weights = {0: rng.uniform(0.5, 2.0, size=5),
                   1: rng.uniform(0.5, 2.0, size=5)}
        buffer = ParameterBuffer(made, dtype=np.float64)
        fused = FusedResidualMADE(made, buffer)

        def loss_only():
            return fused.loss_and_grad(x, None, weights)[0]

        probe = [
            buffer.view("embeddings.0.weight"),
            buffer.view("input_layer.bias"),
            buffer.view("output_layer.weight"),
        ]
        fd_grads = numeric_grad_arrays(loss_only, probe)

        buffer.zero_grad()
        fused.loss_and_grad(x, None, weights)
        analytic = [
            buffer.grad_view("embeddings.0.weight"),
            buffer.grad_view("input_layer.bias"),
            buffer.grad_view("output_layer.weight"),
        ]
        for got, expected in zip(analytic, fd_grads):
            assert relative_grad_error(got, expected) < 1e-6


class TestGradcheckTreeEncoder:
    def _random_tree(self, rng):
        specs = [TreeNodeSpec("child", [int(rng.integers(2, 7)),
                                        int(rng.integers(2, 7))],
                              children=[TreeNodeSpec("grand",
                                                     [int(rng.integers(2, 8))])])]
        if rng.random() < 0.5:
            specs.append(TreeNodeSpec("other", [int(rng.integers(2, 9))]))
        return EvidenceTreeEncoder(
            specs, embed_dim=int(rng.integers(2, 6)),
            node_dim=int(rng.integers(3, 7)), rng=rng,
        )

    def _random_batches(self, rng, tree, batch):
        batches = {}
        for spec in tree.specs:
            rows = int(rng.integers(0, 14))
            node = TreeNodeBatch(
                values=np.stack(
                    [rng.integers(0, k, size=rows) for k in spec.vocab_sizes],
                    axis=1,
                ) if rows else np.zeros((0, len(spec.vocab_sizes)), dtype=np.int64),
                parent_ids=np.sort(rng.integers(0, batch, size=rows)),
            )
            for child in spec.children:
                crows = int(rng.integers(0, 10))
                node.children[child.name] = TreeNodeBatch(
                    values=np.stack(
                        [rng.integers(0, k, size=crows)
                         for k in child.vocab_sizes], axis=1,
                    ) if crows else np.zeros((0, len(child.vocab_sizes)),
                                             dtype=np.int64),
                    parent_ids=np.sort(rng.integers(0, max(rows, 1), size=crows)),
                )
            batches[spec.name] = node
        return batches

    @pytest.mark.parametrize("seed", range(6))
    def test_ssar_stack_grads_match_autograd(self, seed):
        """Full SSAR training stack: tree encoder context into MADE NLL."""
        rng = np.random.default_rng(300 + seed)
        tree = self._random_tree(rng)
        made = random_made(rng, context_dim=tree.context_dim)
        x, weights = random_batch(rng, made)
        batches = self._random_batches(rng, tree, len(x))

        named = dict(made.named_parameters())
        named.update({
            f"tree.{name}": p for name, p in tree.named_parameters()
        })
        for p in named.values():
            p.grad = None
        ctx = tree(batches, len(x))
        loss = made.nll(x, context=ctx, variable_weights=weights or None)
        loss.backward()
        ref = {name: p.grad.copy() for name, p in named.items()}

        # One buffer over both modules, as the stepper builds it.
        combined = ParameterBuffer(_combined_module(made, tree),
                                   dtype=np.float64)
        fused_made = FusedResidualMADE(made, combined)
        fused_tree = FusedTreeEncoder(tree, combined)
        fctx = fused_tree.forward(batches, len(x))
        floss, d_context = fused_made.loss_and_grad(x, fctx, weights or None)
        fused_tree.backward(d_context)

        assert floss == pytest.approx(loss.item(), rel=1e-12)
        for name, param in named.items():
            err = relative_grad_error(combined.grad_view(param), ref[name])
            assert err < 1e-10, f"layout {seed}, parameter {name}: {err}"


def _combined_module(made, tree):
    from repro.nn.layers import Module

    class _Holder(Module):
        pass

    holder = _Holder()
    holder.made = made
    holder.tree_encoder = tree
    return holder


class TestMultiheadKernel:
    def test_matches_per_head_kernel(self):
        rng = np.random.default_rng(5)
        offsets = np.array([0, 4, 6, 13])
        logits = rng.normal(size=(9, 13))
        targets = np.stack([
            rng.integers(0, 4, size=9),
            rng.integers(0, 2, size=9),
            rng.integers(0, 7, size=9),
        ], axis=1)
        weights = rng.uniform(0.2, 2.0, size=(9, 3))
        normalized = weights / weights.sum(axis=0)

        expected_loss = 0.0
        expected_grad = np.empty_like(logits)
        for i in range(3):
            start, stop = offsets[i], offsets[i + 1]
            term, d_slice = kernels.softmax_nll_grad(
                logits[:, start:stop].copy(), targets[:, i], weights[:, i]
            )
            expected_loss += term
            expected_grad[:, start:stop] = d_slice

        loss, d_logits = kernels.multihead_softmax_nll_grad(
            logits.copy(), offsets, targets, normalized
        )
        assert loss == pytest.approx(expected_loss, rel=1e-12)
        np.testing.assert_allclose(d_logits, expected_grad, atol=1e-12)

    def test_single_head_matches_cross_entropy(self):
        rng = np.random.default_rng(6)
        logits = rng.normal(size=(7, 5))
        targets = rng.integers(0, 5, size=7)
        weights = rng.uniform(0.1, 2.0, size=7)
        logits_t = Tensor(logits, requires_grad=True)
        loss_t = F.cross_entropy(logits_t, targets, weights)
        loss_t.backward()
        loss, d_logits = kernels.softmax_nll_grad(
            logits.copy(), targets, weights
        )
        assert loss == pytest.approx(loss_t.item(), rel=1e-12)
        np.testing.assert_allclose(d_logits, logits_t.grad, atol=1e-12)


# ----------------------------------------------------------------------
# Training-loop semantics
# ----------------------------------------------------------------------

class TestBatchBounds:
    def test_plain_split(self):
        assert batch_bounds(10, 4) == [(0, 4), (4, 8), (8, 10)]

    def test_one_row_remainder_folds_into_previous(self):
        assert batch_bounds(9, 4) == [(0, 4), (4, 9)]

    def test_single_short_batch_survives(self):
        assert batch_bounds(1, 4) == [(0, 1)]

    def test_exact_multiple(self):
        assert batch_bounds(8, 4) == [(0, 4), (4, 8)]

    @pytest.mark.parametrize("n,batch", [(7, 3), (257, 64), (13, 12), (2, 8)])
    def test_covers_every_row_exactly_once(self, n, batch):
        bounds = batch_bounds(n, batch)
        assert bounds[0][0] == 0 and bounds[-1][1] == n
        for (a, b), (c, d) in zip(bounds[:-1], bounds[1:]):
            assert b == c and b - a >= 2
        assert sum(stop - start for start, stop in bounds) == n

    def test_every_training_row_contributes_each_epoch(self):
        """Regression: a 1-row remainder used to be dropped silently."""
        rng = np.random.default_rng(0)
        # 116 examples, 10% validation → 105 training rows; batch 26 leaves
        # a 1-row remainder (105 = 4*26 + 1).
        num_examples = 116
        x = rng.normal(size=(num_examples, 3))
        y = (x.sum(axis=1) > 0).astype(int)
        model = MLP(3, [8], 2, rng=np.random.default_rng(1))
        seen_per_epoch = []
        seen = 0

        def loss_fn(idx):
            nonlocal seen
            seen += len(idx)
            return F.cross_entropy(model(Tensor(x[idx])), y[idx])

        def eval_fn(idx):
            nonlocal seen
            # eval marks an epoch boundary in this instrumentation
            seen_per_epoch.append(seen)
            return float(
                F.nll_from_logits(model(Tensor(x[idx])).numpy(), y[idx]).mean()
            )

        config = TrainConfig(epochs=3, batch_size=26, seed=0, patience=10,
                             backend="autograd")
        train(model, num_examples, loss_fn, eval_fn, config)
        num_train = num_examples - max(1, int(num_examples * 0.1))
        assert num_train % 26 == 1  # the regression-triggering shape
        totals = np.diff([0] + seen_per_epoch)
        assert list(totals) == [num_train] * len(totals)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            TrainConfig(backend="jit")


# ----------------------------------------------------------------------
# Incremental debias weights
# ----------------------------------------------------------------------

class TestDebiasWeights:
    def _naive_reference(self, tables, variables, row_positions):
        """The pre-refactor O(slots · n log n) stacked-unique algorithm."""
        weights = {}
        stacked = []
        slot_weight = {}
        for slot, table in enumerate(tables):
            stacked.append(row_positions[table])
            combo = np.stack(stacked, axis=1)
            _, inverse, counts = np.unique(
                combo, axis=0, return_inverse=True, return_counts=True
            )
            slot_weight[slot] = 1.0 / counts[inverse]
        for var_idx, spec in enumerate(variables):
            if spec.is_tuple_factor:
                weights[var_idx] = slot_weight[spec.slot - 1]
            else:
                weights[var_idx] = slot_weight[spec.slot]
        return weights

    @pytest.mark.parametrize("seed", range(5))
    def test_incremental_matches_stacked_unique(self, seed):
        from types import SimpleNamespace

        rng = np.random.default_rng(seed)
        tables = ("ta", "tb", "tc")
        rows = int(rng.integers(10, 400))
        row_positions = {
            t: rng.integers(0, rng.integers(2, 40), size=rows).astype(np.int64)
            for t in tables
        }
        variables = []
        for slot in range(3):
            if slot > 0 and rng.random() < 0.7:
                variables.append(SimpleNamespace(
                    is_tuple_factor=True, slot=slot))
            variables.append(SimpleNamespace(is_tuple_factor=False, slot=slot))
        fake_model = SimpleNamespace(layout=SimpleNamespace(
            path=SimpleNamespace(tables=tables), variables=variables,
        ))
        data = TrainingData(
            matrix=np.zeros((rows, len(variables)), dtype=np.int64),
            row_positions=row_positions,
        )
        got = _CompletionModelBase._debias_weights(fake_model, data)
        expected = self._naive_reference(tables, variables, row_positions)
        assert set(got) == set(expected)
        for var in expected:
            np.testing.assert_allclose(got[var], expected[var])


# ----------------------------------------------------------------------
# Backend plumbing and engine-level equivalence
# ----------------------------------------------------------------------

FAST = TrainConfig(epochs=4, batch_size=128, lr=1e-2, patience=3)


def _engine(backend=None, **kwargs) -> ReStore:
    dataset = make_scenario_dataset(
        "synthetic/biased", keep_rate=0.5, seed=1, scale=0.2
    )
    config = ReStoreConfig(
        model=ModelConfig(train=FAST), seed=3, train_backend=backend, **kwargs
    )
    return ReStore.from_dataset(dataset, config).fit()


class TestBackendPlumbing:
    def test_invalid_engine_backend_rejected(self):
        with pytest.raises(ValueError, match="train_backend"):
            ReStoreConfig(train_backend="compiled")

    def test_fused_is_the_default(self):
        assert TrainConfig().backend == "fused"
        engine = _engine()
        for model in engine.fitted_models().values():
            assert model.train_result.backend == "fused"
            assert (
                len(model.train_result.epoch_wall_times_s)
                == model.train_result.epochs_run
            )
            assert all(t > 0 for t in model.train_result.epoch_wall_times_s)

    def test_engine_override_reaches_models(self):
        engine = _engine(backend="autograd")
        for model in engine.fitted_models().values():
            assert model.train_result.backend == "autograd"

    def test_state_dict_names_identical_across_backends(self):
        fused = _engine()
        autograd = _engine(backend="autograd")
        for key, model in fused.fitted_models().items():
            other = autograd.fitted_models()[key]
            assert set(model.state_dict()) == set(other.state_dict())

    def test_model_selection_agrees_across_backends(self):
        fused = _engine()
        autograd = _engine(backend="autograd")
        for target in ("tb",):
            ranked_fused = [
                (c.model.kind, c.path.tables) for c in fused.candidates(target)
            ]
            ranked_autograd = [
                (c.model.kind, c.path.tables)
                for c in autograd.candidates(target)
            ]
            assert ranked_fused == ranked_autograd
            for cf, ca in zip(fused.candidates(target),
                              autograd.candidates(target)):
                assert cf.target_loss == pytest.approx(ca.target_loss, abs=0.05)

    def test_fused_loss_tracks_autograd(self):
        fused = _engine()
        autograd = _engine(backend="autograd")
        for key, model in fused.fitted_models().items():
            other = autograd.fitted_models()[key]
            assert model.train_result.final_train_loss == pytest.approx(
                other.train_result.final_train_loss, abs=0.05
            )

    def test_fused_snapshot_stays_picklable(self):
        engine = _engine()
        for model in engine.fitted_models().values():
            snapshot = model.inference_snapshot()
            blob = pickle.dumps(snapshot)
            assert pickle.loads(blob).kind == model.kind

    def test_fused_fit_under_process_executor_matches_serial(self):
        serial = _engine()
        parallel = _engine(n_workers=2, parallel_backend="process")
        for key, model in serial.fitted_models().items():
            other = parallel.fitted_models()[key]
            for name, value in model.state_dict().items():
                assert np.array_equal(other.state_dict()[name], value), name

    def test_training_loss_decreases_under_fused(self):
        engine = _engine()
        for model in engine.fitted_models().values():
            losses = model.train_result.train_losses
            assert losses[-1] < losses[0]


# ----------------------------------------------------------------------
# Warm-start fine-tuning (incremental re-training)
# ----------------------------------------------------------------------


def _mutate_root(engine):
    """Overwrite one non-key root column so the database digest moves.

    Deterministic: twin engines built from the same dataset at the same
    seed receive the identical mutation.
    """
    from repro.relational import ColumnKind

    root = engine._default_model().layout.path.tables[0]
    table = engine.db.table(root)
    pk = table.primary_key
    column = next(
        c for c in table.column_names
        if c != pk and table.meta(c).kind != ColumnKind.KEY
    )
    return engine.apply_mutations(
        updates={root: [{pk: int(table[pk][0]), column: table[column][1]}]}
    )


class TestWarmStartFineTune:
    def test_fine_tune_on_unchanged_database_is_exact_noop(self):
        """The digest gate makes the no-op *exact*, not just approximate:
        parameters stay bitwise identical and the stamped TrainResult is
        the very same object."""
        engine = _engine()
        before = {
            key: {n: v.copy() for n, v in model.state_dict().items()}
            for key, model in engine.fitted_models().items()
        }
        results = {
            key: model.train_result
            for key, model in engine.fitted_models().items()
        }
        outcome = engine.fine_tune()
        assert outcome["skipped"] is True
        assert outcome["models_tuned"] == 0
        for key, model in engine.fitted_models().items():
            assert model.train_result is results[key]
            assert model.train_result.warm_start is False
            for name, value in model.state_dict().items():
                assert np.array_equal(value, before[key][name]), (key, name)

    def test_fine_tune_after_mutation_resumes_from_fitted_weights(self):
        """Warm start means training continues, not restarts: the first
        fine-tune epoch already sits below the cold fit's first epoch
        (which began at random init + bias re-initialization)."""
        engine = _engine()
        cold_first = {
            key: model.train_result.train_losses[0]
            for key, model in engine.fitted_models().items()
        }
        _mutate_root(engine)
        outcome = engine.fine_tune()
        assert outcome["skipped"] is False
        assert outcome["models_tuned"] == len(engine.fitted_models())
        for key, model in engine.fitted_models().items():
            assert model.train_result.warm_start is True
            assert model.train_result.backend == "fused"
            assert model.train_result.train_losses[0] < cold_first[key], key

    def test_warm_start_parity_across_backends(self):
        """Fused and autograd fine-tunes of identically mutated twins
        land on the same losses, mirroring the cold-fit parity suite."""
        fused = _engine()
        autograd = _engine(backend="autograd")
        for engine in (fused, autograd):
            _mutate_root(engine)
            assert engine.fine_tune()["skipped"] is False
        for key, model in fused.fitted_models().items():
            other = autograd.fitted_models()[key]
            assert model.train_result.warm_start is True
            assert other.train_result.warm_start is True
            assert model.train_result.backend == "fused"
            assert other.train_result.backend == "autograd"
            assert model.train_result.final_train_loss == pytest.approx(
                other.train_result.final_train_loss, abs=0.05
            )

    def test_warm_started_parameters_stay_within_gradcheck_bounds(self):
        """The gradcheck contract holds at *trained* parameters too: after
        a warm-start fine-tune, fused gradients at the tuned weights still
        match the autograd oracle within the acceptance band."""
        engine = _engine()
        _mutate_root(engine)
        engine.fine_tune()
        model = next(
            m for m in engine.fitted_models().values()
            if m.made.context_dim == 0
        )
        made = model.made
        x = model.training_data.matrix[:16]
        ref_loss, ref_grads, _ = autograd_reference(made, x, None)
        buffer = ParameterBuffer(made, dtype=np.float64)
        fused = FusedResidualMADE(made, buffer)
        loss, _ = fused.loss_and_grad(x, None, None)
        assert loss == pytest.approx(ref_loss, rel=1e-9)
        for name in buffer.names:
            err = relative_grad_error(buffer.grad_view(name), ref_grads[name])
            assert err < PARITY_TOL, name

    def test_warm_start_flag_survives_artifact_round_trip(self, tmp_path):
        engine = _engine()
        _mutate_root(engine)
        engine.fine_tune()
        path = tmp_path / "artifact"
        engine.save_artifact(path, scenario="synthetic/biased")
        reloaded = ReStore.load(path)
        assert reloaded.fitted_models(), "artifact restored no models"
        for key, model in reloaded.fitted_models().items():
            assert model.train_result is not None, key
            assert model.train_result.warm_start is True, key
            assert model.train_result.backend == "fused", key
