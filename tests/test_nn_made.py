"""Tests for the ResidualMADE autoregressive model.

The crucial invariant is the autoregressive property: output ``i`` must be
invariant to inputs ``j >= i`` (and sensitive, in general, to ``j < i``).
We verify it empirically by perturbing inputs, check that training recovers
simple known conditionals, and exercise conditional sampling.
"""

import numpy as np
import pytest

from repro.nn import ResidualMADE, Tensor, TrainConfig, train
from repro.nn.made import _sample_rows


def make_model(vocab_sizes, context_dim=0, seed=0, hidden=(32, 32)):
    return ResidualMADE(
        vocab_sizes, embed_dim=4, hidden=hidden,
        rng=np.random.default_rng(seed), context_dim=context_dim,
    )


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            make_model([])

    def test_rejects_zero_vocab(self):
        with pytest.raises(ValueError):
            make_model([3, 0])

    def test_rejects_unequal_hidden(self):
        with pytest.raises(ValueError):
            ResidualMADE([2, 2], 4, hidden=(16, 32), rng=np.random.default_rng(0))

    def test_output_width(self):
        model = make_model([3, 5, 2])
        out = model.forward(np.zeros((4, 3), dtype=int))
        assert out.shape == (4, 10)

    def test_bad_input_shape(self):
        model = make_model([3, 5])
        with pytest.raises(ValueError):
            model.forward(np.zeros((4, 3), dtype=int))

    def test_context_required_when_configured(self):
        model = make_model([3, 3], context_dim=2)
        with pytest.raises(ValueError):
            model.forward(np.zeros((2, 2), dtype=int))


class TestAutoregressiveProperty:
    def test_outputs_ignore_later_inputs(self):
        model = make_model([4, 4, 4], seed=1)
        rng = np.random.default_rng(0)
        x = rng.integers(0, 4, size=(8, 3))
        base = model.forward(x).numpy()
        for var in range(3):
            perturbed = np.array(x, copy=True)
            perturbed[:, var] = (perturbed[:, var] + 1) % 4
            out = model.forward(perturbed).numpy()
            # Logits of variables <= var must be identical.
            stop = int(model._logit_offsets[var + 1])
            np.testing.assert_allclose(out[:, :stop], base[:, :stop], atol=1e-12)

    def test_outputs_depend_on_earlier_inputs(self):
        model = make_model([4, 4], seed=2)
        x = np.zeros((4, 2), dtype=int)
        base = model.conditional_probs(x, variable=1)
        shifted = np.array(x)
        shifted[:, 0] = 1
        changed = model.conditional_probs(shifted, variable=1)
        assert not np.allclose(base, changed)

    def test_context_reaches_all_outputs(self):
        model = make_model([3, 3], context_dim=4, seed=3)
        x = np.zeros((2, 2), dtype=int)
        ctx0 = Tensor(np.zeros((2, 4)))
        ctx1 = Tensor(np.ones((2, 4)))
        out0 = model.forward(x, ctx0).numpy()
        out1 = model.forward(x, ctx1).numpy()
        # Even the first variable's logits must shift with context.
        assert not np.allclose(out0[:, :3], out1[:, :3])


class TestLikelihoodTraining:
    def test_nll_decreases(self):
        rng = np.random.default_rng(0)
        # x1 uniform over 3 values; x2 = x1 deterministically.
        x1 = rng.integers(0, 3, size=600)
        data = np.stack([x1, x1], axis=1)
        model = make_model([3, 3], seed=4)
        initial = model.per_example_nll(data).mean()
        result = train(
            model, len(data),
            loss_fn=lambda idx: model.nll(data[idx]),
            eval_fn=lambda idx: float(model.per_example_nll(data[idx]).mean()),
            config=TrainConfig(epochs=15, batch_size=128, lr=5e-3, seed=0),
        )
        final = model.per_example_nll(data).mean()
        assert final < initial
        assert result.best_val_loss < initial

    def test_learns_deterministic_conditional(self):
        rng = np.random.default_rng(1)
        x1 = rng.integers(0, 3, size=800)
        data = np.stack([x1, (x1 + 1) % 3], axis=1)
        model = make_model([3, 3], seed=5)
        train(
            model, len(data),
            loss_fn=lambda idx: model.nll(data[idx]),
            eval_fn=lambda idx: float(model.per_example_nll(data[idx]).mean()),
            config=TrainConfig(epochs=25, batch_size=128, lr=1e-2, seed=0, patience=10),
        )
        probe = np.stack([np.arange(3), np.zeros(3, dtype=int)], axis=1)
        probs = model.conditional_probs(probe, variable=1)
        predicted = probs.argmax(axis=1)
        np.testing.assert_array_equal(predicted, (np.arange(3) + 1) % 3)
        assert probs.max(axis=1).min() > 0.8

    def test_nll_variable_subset(self):
        model = make_model([3, 3], seed=6)
        data = np.zeros((16, 2), dtype=int)
        full = model.nll(data).item()
        only_second = model.nll(data, variables=[1]).item()
        assert only_second <= full + 1e-9

    def test_nll_empty_subset_raises(self):
        model = make_model([3, 3])
        with pytest.raises(ValueError):
            model.nll(np.zeros((4, 2), dtype=int), variables=[])


class TestSampling:
    def test_sample_preserves_evidence(self):
        model = make_model([5, 5, 5], seed=7)
        evidence = np.zeros((10, 3), dtype=int)
        evidence[:, 0] = np.arange(10) % 5
        out = model.sample(evidence, start_variable=1, rng=np.random.default_rng(0))
        np.testing.assert_array_equal(out[:, 0], evidence[:, 0])
        assert out[:, 1:].min() >= 0 and out[:, 1:].max() < 5

    def test_sample_start_bounds(self):
        model = make_model([3, 3])
        with pytest.raises(ValueError):
            model.sample(np.zeros((1, 2), dtype=int), start_variable=5,
                         rng=np.random.default_rng(0))

    def test_sampling_matches_learned_conditional(self):
        rng = np.random.default_rng(2)
        x1 = rng.integers(0, 2, size=1000)
        data = np.stack([x1, x1], axis=1)
        model = make_model([2, 2], seed=8)
        train(
            model, len(data),
            loss_fn=lambda idx: model.nll(data[idx]),
            eval_fn=lambda idx: float(model.per_example_nll(data[idx]).mean()),
            config=TrainConfig(epochs=20, batch_size=256, lr=1e-2, seed=0, patience=10),
        )
        evidence = np.zeros((400, 2), dtype=int)
        evidence[:200, 0] = 1
        samples = model.sample(evidence, 1, rng=np.random.default_rng(3))
        agree = (samples[:, 1] == samples[:, 0]).mean()
        assert agree > 0.9

    def test_deterministic_given_rng(self):
        model = make_model([4, 4], seed=9)
        ev = np.zeros((6, 2), dtype=int)
        a = model.sample(ev, 1, rng=np.random.default_rng(42))
        b = model.sample(ev, 1, rng=np.random.default_rng(42))
        np.testing.assert_array_equal(a, b)

    def test_temperature_zero_like_behaviour(self):
        model = make_model([4, 4], seed=10)
        ev = np.zeros((50, 2), dtype=int)
        cold = model.sample(ev, 1, rng=np.random.default_rng(0), temperature=1e-4)
        # Near-zero temperature collapses to the argmax of the conditional.
        probs = model.conditional_probs(ev, 1)
        np.testing.assert_array_equal(cold[:, 1], probs.argmax(axis=1))


class TestSampleRows:
    def test_respects_distribution(self):
        rng = np.random.default_rng(0)
        probs = np.tile(np.array([[0.8, 0.2]]), (5000, 1))
        draws = _sample_rows(probs, rng)
        assert abs(draws.mean() - 0.2) < 0.03

    def test_degenerate_distribution(self):
        probs = np.tile(np.array([[0.0, 1.0, 0.0]]), (10, 1))
        draws = _sample_rows(probs, np.random.default_rng(0))
        np.testing.assert_array_equal(draws, np.ones(10, dtype=int))


class TestStateDict:
    def test_roundtrip(self):
        model = make_model([3, 3], seed=11)
        state = model.state_dict()
        x = np.zeros((2, 2), dtype=int)
        before = model.forward(x).numpy().copy()
        for p in model.parameters():
            p.data += 1.0
        assert not np.allclose(model.forward(x).numpy(), before)
        model.load_state_dict(state)
        np.testing.assert_allclose(model.forward(x).numpy(), before)

    def test_names_are_stable_attribute_paths(self):
        """Two same-architecture builds produce identical parameter names —
        the identity that serialized artifacts key weights on."""
        a = make_model([3, 3], seed=11)
        b = make_model([3, 3], seed=99)
        names_a = [name for name, _p in a.named_parameters()]
        names_b = [name for name, _p in b.named_parameters()]
        assert names_a == names_b
        assert len(set(names_a)) == len(names_a)  # unique
        assert any(name.startswith("embeddings.0.") for name in names_a)

    def test_cross_instance_load_by_name(self):
        source = make_model([3, 3], seed=11)
        target = make_model([3, 3], seed=99)
        x = np.zeros((2, 2), dtype=int)
        target.load_state_dict(source.state_dict())
        np.testing.assert_array_equal(
            target.forward(x).numpy(), source.forward(x).numpy()
        )

    def test_legacy_order_based_state_dict_still_loads(self):
        source = make_model([3, 3], seed=11)
        legacy = {
            f"param_{i}": np.array(p.data, copy=True)
            for i, p in enumerate(source.parameters())
        }
        target = make_model([3, 3], seed=99)
        target.load_state_dict(legacy)
        x = np.zeros((2, 2), dtype=int)
        np.testing.assert_array_equal(
            target.forward(x).numpy(), source.forward(x).numpy()
        )

    def test_mismatched_names_raise(self):
        model = make_model([3, 3], seed=11)
        state = model.state_dict()
        state["not_a_parameter"] = state.pop(next(iter(state)))
        with pytest.raises(ValueError, match="not_a_parameter"):
            model.load_state_dict(state)

    def test_mismatched_shape_names_parameter(self):
        model = make_model([3, 3], seed=11)
        state = model.state_dict()
        first = next(iter(state))
        state[first] = np.zeros((1, 1))
        with pytest.raises(ValueError, match=first.split(".")[0]):
            model.load_state_dict(state)
