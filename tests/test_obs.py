"""Tests for :mod:`repro.obs` — tracing, metrics, logging, exporters.

Four rings:

* **primitives** — spans nest and carry attrs; trace context crosses
  threads via :func:`activate` and processes via the wire dict; the
  tracer's buffer is bounded; sampling is per-trace, never partial.
* **metrics** — the registry's histogram percentiles *are*
  ``np.percentile`` (the single implementation every stats surface now
  reports through), counters survive a Barrier-synchronized hammering
  without losing increments, collectors fold external stats in.
* **exporters** — Chrome-trace JSON round-trips and validates (spans
  nest, parents resolve), the latency report renders, the benchmark
  envelope schema-checks itself.
* **integration** — a traced engine answer yields one nested tree down
  to per-chunk spans; ``ServingCore.stats()`` equals a straight
  ``np.percentile`` over its registry histogram (no duplicate
  percentile code left to drift); a traced 2-worker fleet query
  stitches router→worker→engine→chunk spans into one tree (``slow``).
"""

import json
import threading

import numpy as np
import pytest

from repro import ReStore, ReStoreConfig, parse_query
from repro.core import ModelConfig
from repro.incomplete.registry import make_scenario_dataset
from repro.nn import TrainConfig
from repro.obs import (
    NOOP_SPAN,
    ENVELOPE_VERSION,
    Histogram,
    MetricsRegistry,
    Span,
    TraceContext,
    Tracer,
    activate,
    bench_envelope,
    chrome_trace_events,
    clear_records,
    current_context,
    disable_tracing,
    enable_tracing,
    export_chrome_trace,
    get_logger,
    get_tracer,
    profile_kernels,
    recent_records,
    report,
    set_tracer,
    span_tree,
    trace,
    tracing_enabled,
    validate_chrome_trace,
    validate_envelope,
)
from repro.serving import ServingCore

FAST = TrainConfig(epochs=3, batch_size=128, lr=1e-2, patience=2)
COMPLETION_SQL = "SELECT COUNT(*) FROM ta NATURAL JOIN tb WHERE b = 'v1';"


@pytest.fixture(autouse=True)
def _clean_tracing():
    """Every test starts and ends with tracing off and a fresh tracer."""
    disable_tracing()
    set_tracer(Tracer())
    yield
    disable_tracing()
    set_tracer(Tracer())


@pytest.fixture(scope="module")
def engine() -> ReStore:
    dataset = make_scenario_dataset(
        "synthetic/biased", keep_rate=0.5, seed=1, scale=0.2
    )
    config = ReStoreConfig(model=ModelConfig(train=FAST), seed=3)
    return ReStore.from_dataset(dataset, config).fit()


# ----------------------------------------------------------------------
# Tracing primitives
# ----------------------------------------------------------------------


class TestSpans:
    def test_disabled_returns_shared_noop(self):
        assert not tracing_enabled()
        span = trace("anything", rows=3)
        assert span is NOOP_SPAN
        with span as s:
            s.set("key", "value")  # all no-ops, nothing collected
            s.event("instant")
        assert len(get_tracer()) == 0

    def test_spans_nest_and_carry_attrs(self):
        tracer = enable_tracing()
        with trace("outer", layer="engine") as outer:
            with trace("inner") as inner:
                inner.set("rows", 42)
            outer.set("done", True)
        spans = {s.name: s for s in tracer.spans()}
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["inner"].trace_id == spans["outer"].trace_id
        assert spans["outer"].parent_id is None
        assert spans["inner"].attrs["rows"] == 42
        assert spans["outer"].attrs == {"layer": "engine", "done": True}
        assert spans["outer"].duration_us >= spans["inner"].duration_us

    def test_exception_annotates_and_still_records(self):
        tracer = enable_tracing()
        with pytest.raises(ValueError):
            with trace("doomed"):
                raise ValueError("boom")
        (span,) = tracer.spans()
        assert span.attrs["error"] == "ValueError"

    def test_context_restored_after_span(self):
        enable_tracing()
        assert current_context() is None
        with trace("root"):
            assert current_context() is not None
            with trace("child"):
                pass
        assert current_context() is None

    def test_activate_carries_context_across_threads(self):
        """Pool threads don't inherit contextvars; activate() bridges."""
        tracer = enable_tracing()
        with trace("root"):
            ctx = current_context()

        def worker():
            with activate(ctx):
                with trace("pool-child"):
                    pass

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        spans = {s.name: s for s in tracer.spans()}
        assert spans["pool-child"].trace_id == spans["root"].trace_id
        assert spans["pool-child"].parent_id == spans["root"].span_id

    def test_wire_round_trip(self):
        ctx = TraceContext("deadbeef" * 4, "cafe" * 4, sampled=True)
        assert TraceContext.from_wire(ctx.as_wire()) == ctx
        assert TraceContext.from_wire(None) is None
        assert TraceContext.from_wire({}) is None
        assert TraceContext.from_wire({"trace_id": ""}) is None

    def test_sampling_is_per_trace_never_partial(self):
        tracer = enable_tracing(sample_rate=0.25)
        for _ in range(20):
            with trace("root"):
                with trace("child"):
                    pass
        spans = tracer.spans()
        # every ~4th root sampled, and each sampled trace is complete
        by_trace = {}
        for span in spans:
            by_trace.setdefault(span.trace_id, []).append(span.name)
        assert len(by_trace) == 5
        for names in by_trace.values():
            assert sorted(names) == ["child", "root"]

    def test_tracer_buffer_is_bounded(self):
        tracer = Tracer(max_spans=4)
        enable_tracing(tracer=tracer)
        for i in range(10):
            with trace(f"span-{i}"):
                pass
        assert len(tracer) == 4
        assert tracer.dropped == 6
        assert [s.name for s in tracer.spans()] == [
            "span-6", "span-7", "span-8", "span-9"
        ]

    def test_take_drains_one_trace_only(self):
        tracer = Tracer()
        a = Span("a", trace_id="t1", span_id="s1", parent_id=None, start_us=0)
        b = Span("b", trace_id="t2", span_id="s2", parent_id=None, start_us=0)
        tracer.add(a)
        tracer.add(b)
        taken = tracer.take("t1")
        assert [s.name for s in taken] == ["a"]
        assert [s.name for s in tracer.spans()] == ["b"]
        other = Tracer()
        other.ingest(taken)
        assert [s.name for s in other.spans()] == ["a"]


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------


class TestMetricsRegistry:
    def test_instruments_are_get_or_create(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h", window=16) is reg.histogram("h")

    def test_histogram_percentile_is_np_percentile(self):
        """The one percentile implementation: byte-identical to numpy."""
        rng = np.random.default_rng(7)
        values = rng.gamma(2.0, 10.0, size=500)
        hist = Histogram("latency", window=1024)
        for v in values:
            hist.observe(v)
        for q in (50, 95, 99):
            assert hist.percentile(q) == pytest.approx(
                float(np.percentile(values, q)), abs=0.0
            )
        assert hist.mean() == pytest.approx(float(np.mean(values)))

    def test_histogram_window_bounds_percentiles_not_totals(self):
        hist = Histogram("h", window=4)
        for v in (1, 2, 3, 4, 100, 200, 300, 400):
            hist.observe(v)
        assert hist.values() == [100.0, 200.0, 300.0, 400.0]
        summary = hist.summary()
        assert summary["count"] == 8          # monotonic over full history
        assert summary["total"] == 1010.0
        assert summary["min"] == 1.0
        assert summary["max"] == 400.0
        assert summary["p50"] == pytest.approx(
            float(np.percentile([100, 200, 300, 400], 50))
        )

    def test_empty_histogram_reports_zeros(self):
        hist = Histogram("empty")
        assert hist.percentile(50) == 0.0
        assert hist.mean() == 0.0
        assert hist.summary()["p99"] == 0.0

    def test_collectors_fold_into_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("hits").add(3)
        reg.gauge("depth").set(7)
        reg.register_collector("cache", lambda: {"hits": 1, "misses": 2})
        reg.register_collector("broken", lambda: 1 / 0)
        snap = reg.snapshot()
        assert snap["counters"]["hits"] == 3
        assert snap["gauges"]["depth"] == 7.0
        assert snap["collected"]["cache"] == {"hits": 1, "misses": 2}
        assert "ZeroDivisionError" in snap["collected"]["broken"]["error"]
        json.loads(reg.to_json())  # snapshot stays JSON-representable

    def test_counter_concurrent_increments_never_lost(self):
        """Satellite: Barrier-synchronized threads, zero lost increments."""
        reg = MetricsRegistry()
        counter = reg.counter("hammered")
        hist = reg.histogram("observed", window=100_000)
        n_threads, per_thread = 8, 2_000
        barrier = threading.Barrier(n_threads)

        def hammer(worker_id: int) -> None:
            barrier.wait()  # maximal contention: everyone starts together
            for i in range(per_thread):
                counter.add()
                hist.observe(worker_id * per_thread + i)

        threads = [
            threading.Thread(target=hammer, args=(t,)) for t in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == n_threads * per_thread
        assert hist.count == n_threads * per_thread
        assert len(hist.values()) == n_threads * per_thread


class TestKernelProfiling:
    def test_profile_kernels_accumulates(self, engine):
        query = parse_query(COMPLETION_SQL)
        engine.clear_cache()
        with profile_kernels() as prof:
            engine.answer(query)
        snap = prof.snapshot()
        assert "dense" in snap
        assert snap["dense"]["calls"] > 0
        assert snap["dense"]["rows"] > 0
        table = prof.report()
        assert "dense" in table
        # scoped: after exit the kernels are back on the no-op path
        from repro.obs import profile as profile_module
        assert profile_module.ACTIVE is None


# ----------------------------------------------------------------------
# Exporters, logs, envelope
# ----------------------------------------------------------------------


class TestChromeExport:
    def test_export_and_validate(self, tmp_path):
        tracer = enable_tracing()
        with trace("outer"):
            with trace("inner") as span:
                span.event("checkpoint")
        path = tmp_path / "trace.json"
        doc = export_chrome_trace(path, tracer=tracer)
        assert validate_chrome_trace(doc) == []
        loaded = json.loads(path.read_text())
        assert loaded["traceEvents"] == doc["traceEvents"]
        complete = [e for e in loaded["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {"outer", "inner"}
        instants = [e for e in loaded["traceEvents"] if e["ph"] == "i"]
        assert [e["name"] for e in instants] == ["checkpoint"]

    def test_validation_catches_broken_nesting(self):
        orphan = Span("o", trace_id="t", span_id="s1", parent_id="missing",
                      start_us=0, duration_us=1)
        doc = {"traceEvents": chrome_trace_events([orphan])}
        problems = validate_chrome_trace(doc)
        assert any("unresolved parent" in p for p in problems)
        assert validate_chrome_trace({"traceEvents": []}) == [
            "traceEvents missing or empty"
        ]

    def test_span_tree_and_report(self):
        tracer = enable_tracing()
        with trace("root", tables="ta/tb"):
            with trace("leaf", rows_scanned=200):
                pass
        roots = span_tree(tracer.spans())
        assert len(roots) == 1
        assert roots[0]["span"].name == "root"
        assert roots[0]["children"][0]["span"].name == "leaf"
        table = report(tracer.spans())
        assert "root" in table and "  leaf" in table
        assert "rows_scanned=200" in table
        assert "% root" in table
        assert report([]) == "(no spans collected — is tracing enabled?)"


class TestStructuredLogging:
    def test_records_carry_trace_ids(self):
        clear_records()
        enable_tracing()
        log = get_logger("test.obs")
        with trace("logged-op"):
            ctx = current_context()
            log.info("thing.happened", worker=3)
        (record,) = recent_records(event="thing.happened")
        assert record["logger"] == "test.obs"
        assert record["level"] == "info"
        assert record["trace_id"] == ctx.trace_id
        assert record["span_id"] == ctx.span_id
        assert record["worker"] == 3
        json.dumps(record, default=str)  # JSON-lines representable
        clear_records()

    def test_filtering_and_levels(self):
        clear_records()
        log = get_logger("test.filter")
        log.warning("a.warn")
        log.error("a.err", detail="bad")
        assert len(recent_records(logger="test.filter")) == 2
        (err,) = recent_records(event="a.err")
        assert err["level"] == "error"
        assert "trace_id" not in err  # no ambient trace context
        clear_records()


class TestBenchEnvelope:
    def test_envelope_validates(self):
        envelope = bench_envelope()
        assert validate_envelope(envelope) == []
        assert envelope["envelope_version"] == ENVELOPE_VERSION
        assert envelope["obs"]["tracing_enabled"] is False
        json.dumps(envelope, default=str)

    def test_validation_catches_problems(self):
        assert validate_envelope([]) != []
        envelope = bench_envelope()
        broken = dict(envelope)
        del broken["git_sha"]
        assert any("git_sha" in p for p in validate_envelope(broken))
        wrong_type = dict(envelope, hostname=42)
        assert any("hostname" in p for p in validate_envelope(wrong_type))
        wrong_version = dict(envelope, envelope_version=99)
        assert any(
            "envelope_version" in p for p in validate_envelope(wrong_version)
        )


# ----------------------------------------------------------------------
# Integration: engine spans and stats-surface equivalence
# ----------------------------------------------------------------------


class TestEngineTracing:
    def test_answer_produces_nested_tree_down_to_chunks(self, engine, tmp_path):
        engine.clear_cache()
        tracer = enable_tracing()
        engine.answer(parse_query(COMPLETION_SQL))
        names = {s.name for s in tracer.spans()}
        assert {"engine.answer", "engine.select_model",
                "engine.completed_join", "join.walk_chunks",
                "join.chunk"} <= names
        roots = span_tree(tracer.spans())
        top = [r["span"].name for r in roots]
        assert "engine.answer" in top
        chunk_spans = [s for s in tracer.spans() if s.name == "join.chunk"]
        assert all(s.attrs["rows_scanned"] > 0 for s in chunk_spans)
        doc = export_chrome_trace(tmp_path / "engine.json", tracer=tracer)
        assert validate_chrome_trace(doc) == []

    def test_cache_attrs_flip_from_miss_to_hit(self, engine):
        engine.clear_cache()
        tracer = enable_tracing()
        query = parse_query(COMPLETION_SQL)
        engine.answer(query)
        engine.answer(query)
        cache_attrs = [
            s.attrs.get("cache") for s in tracer.spans()
            if s.name == "engine.completed_join"
        ]
        assert "miss" in cache_attrs and "hit" in cache_attrs


class TestStatsEquivalence:
    """Satellite: the stats surfaces report through registry histograms."""

    def test_core_percentiles_equal_np_over_registry_window(self, engine):
        engine.clear_cache()
        core = ServingCore(engine)
        latencies = [3.0, 5.0, 8.0, 13.0, 21.0, 34.0, 55.0]
        for ms in latencies:
            core._latency_hist.observe(ms)
        for size in (1, 4, 2, 8):
            core.record_batch(size)
        stats = core.stats()
        assert stats.p50_latency_ms == float(np.percentile(latencies, 50))
        assert stats.p95_latency_ms == float(np.percentile(latencies, 95))
        assert stats.mean_batch_size == float(np.mean([1, 4, 2, 8]))
        assert stats.max_batch_size == 8
        # and the registry snapshot shows the same instruments + caches
        snap = core.metrics.snapshot()
        assert snap["histograms"]["serving.latency_ms"]["count"] == 7
        assert snap["collected"]["join_cache"]["hits"] == \
            engine.join_cache.stats.hits
        assert "partial_cache" in snap["collected"]

    def test_cache_collector_survives_reset_stats(self, engine):
        reg = MetricsRegistry()
        engine.join_cache.register_metrics(reg)
        engine.join_cache.get("no-such-key")  # one miss
        before = reg.snapshot()["collected"]["join_cache"]
        assert before["misses"] >= 1
        engine.join_cache.reset_stats()
        after = reg.snapshot()["collected"]["join_cache"]
        assert after["misses"] == 0  # collector follows the live object
