"""Tests for the inference runtime: compiled forwards, join cache, chunking.

Covers the contract of :mod:`repro.runtime`:

* compiled (graph-free, float32) inference matches the autograd path within
  float32 tolerance,
* the incompleteness join builds no autograd graphs,
* chunked join execution reproduces the unchunked run exactly,
* :class:`JoinCache` LRU eviction, invalidation on re-fit, and statistics.
"""

import numpy as np
import pytest

from repro.core import (
    ARCompletionModel,
    IncompletenessJoin,
    ModelConfig,
    PathLayout,
    ReStore,
    ReStoreConfig,
    SSARCompletionModel,
    build_encoders,
)
from repro.core.forest import EvidenceForest
from repro.datasets import (
    HousingConfig,
    SyntheticConfig,
    generate_housing,
    generate_synthetic,
)
from repro.incomplete import RemovalSpec, make_incomplete
from repro.nn import MLP, ResidualMADE, Tensor, TrainConfig
from repro.nn import tensor as tensor_mod
from repro.relational import CompletionPath, fan_out_relations
from repro.runtime import CompiledMADE, JoinCache, compile_module
from repro.runtime import rng as rt_rng

FAST = TrainConfig(epochs=3, batch_size=128, lr=1e-2, patience=2)


@pytest.fixture(scope="module")
def fitted_setup():
    db = generate_synthetic(SyntheticConfig(num_parents=250, predictability=0.9,
                                            seed=0))
    dataset = make_incomplete(db, [RemovalSpec("tb", "b", 0.5, 0.4)],
                              tf_keep_rate=0.5, seed=1)
    encoders = build_encoders(dataset.incomplete, num_bins=8)
    layout = PathLayout(dataset.incomplete, dataset.annotation,
                        CompletionPath(("ta", "tb")), encoders)
    model = ARCompletionModel(layout, ModelConfig(hidden=(32, 32), train=FAST))
    model.fit()
    return db, dataset, encoders, layout, model


@pytest.fixture(scope="module")
def fitted_ssar(fitted_setup):
    db, dataset, encoders, layout, _ = fitted_setup
    walks = fan_out_relations(dataset.incomplete, dataset.annotation,
                              CompletionPath(("ta", "tb")))
    forest = EvidenceForest(dataset.incomplete, "ta", walks, encoders,
                            self_evidence_table="tb")
    model = SSARCompletionModel(layout, forest, ModelConfig(hidden=(32, 32),
                                                            train=FAST))
    model.fit()
    return model


# ----------------------------------------------------------------------
# Compiled-inference parity
# ----------------------------------------------------------------------

@pytest.mark.slow
class TestCompiledParity:
    def test_conditional_probs_match_autograd(self, fitted_setup):
        *_, layout, model = fitted_setup
        compiled = model.compiled_made()
        rng = np.random.default_rng(0)
        x = np.stack([
            rng.integers(0, v.vocab_size, size=64) for v in layout.variables
        ], axis=1)
        for variable in range(layout.num_variables):
            fast = compiled.conditional_probs(x, variable)
            exact = model.made.conditional_probs(x, variable)
            np.testing.assert_allclose(fast, exact, atol=1e-4, rtol=1e-3)

    def test_per_example_nll_matches_autograd(self, fitted_setup):
        *_, layout, model = fitted_setup
        compiled = model.compiled_made()
        rng = np.random.default_rng(1)
        x = np.stack([
            rng.integers(0, v.vocab_size, size=48) for v in layout.variables
        ], axis=1)
        fast = compiled.per_example_nll(x)
        exact = model.made.per_example_nll(x)
        np.testing.assert_allclose(fast, exact, atol=1e-3, rtol=1e-3)

    def test_ssar_context_and_probs_match(self, fitted_ssar):
        model = fitted_ssar
        roots = np.arange(20, dtype=np.int64)
        batches = model.forest.batch_for_roots(roots)
        fast_ctx = model.compiled_tree().forward(batches, len(roots))
        exact_ctx = model.tree_encoder(batches, len(roots)).numpy()
        np.testing.assert_allclose(fast_ctx, exact_ctx, atol=1e-4, rtol=1e-3)

        layout = model.layout
        rng = np.random.default_rng(2)
        x = np.stack([
            rng.integers(0, v.vocab_size, size=20) for v in layout.variables
        ], axis=1)
        fast = model.compiled_made().conditional_probs(x, 1, context=fast_ctx)
        exact = model.made.conditional_probs(x, 1, context=Tensor(exact_ctx))
        np.testing.assert_allclose(fast, exact, atol=1e-4, rtol=1e-3)

    def test_sample_matches_autograd_draws(self, fitted_setup):
        """With shared uniforms, both backends walk the same CDFs."""
        *_, layout, model = fitted_setup
        compiled = model.compiled_made()
        rng = np.random.default_rng(3)
        n = 128
        prefix = np.zeros((n, layout.num_variables), dtype=np.int64)
        prefix[:, 0] = rng.integers(
            0, layout.variables[0].vocab_size, size=n
        )
        draws = rng.random((n, layout.num_variables - 1))
        fast = compiled.sample(prefix, 1, draws=draws)
        exact = model.made.sample(prefix, 1, rng=None, draws=draws)
        # float32 vs float64 CDFs may flip a draw that lands within ~1e-6 of
        # a bin boundary; identical for virtually every row.
        agree = (fast == exact).all(axis=1).mean()
        assert agree > 0.99

    def test_compile_generic_modules(self):
        rng = np.random.default_rng(0)
        mlp = MLP(6, [16, 16], 3, rng)
        fn = compile_module(mlp)
        x = rng.normal(size=(10, 6))
        fast = fn(x.astype(np.float32))
        exact = mlp(Tensor(x)).numpy()
        np.testing.assert_allclose(fast, exact, atol=1e-4, rtol=1e-3)

    def test_compile_inference_hook_on_made(self):
        rng = np.random.default_rng(0)
        made = ResidualMADE([4, 5, 3], embed_dim=4, hidden=(16, 16), rng=rng)
        compiled = made.compile_inference()
        assert isinstance(compiled, CompiledMADE)
        x = np.zeros((7, 3), dtype=np.int64)
        np.testing.assert_allclose(
            compiled.forward(x), made.forward(x).numpy(), atol=1e-4, rtol=1e-3
        )

    def test_sample_empty_range_needs_no_randomness(self):
        """Zero-column slots (link tables) sample nothing — no rng required."""
        rng = np.random.default_rng(0)
        made = ResidualMADE([4, 5], embed_dim=4, hidden=(8, 8), rng=rng)
        compiled = made.compile_inference()
        prefix = np.zeros((3, 2), dtype=np.int64)
        out = compiled.sample(prefix, 1, stop_variable=1)
        np.testing.assert_array_equal(out, prefix)

    def test_compiled_tiling_is_batch_invariant(self, fitted_setup):
        """A row's compiled activations do not depend on its batch."""
        *_, layout, model = fitted_setup
        compiled = model.compiled_made()
        rng = np.random.default_rng(4)
        x = np.stack([
            rng.integers(0, v.vocab_size, size=300) for v in layout.variables
        ], axis=1)
        full = compiled.forward(x)
        pieces = [compiled.forward(x[i:i + 37]) for i in range(0, 300, 37)]
        np.testing.assert_array_equal(np.concatenate(pieces), full)


# ----------------------------------------------------------------------
# No autograd graphs on the hot path
# ----------------------------------------------------------------------

@pytest.mark.slow
class TestNoAutogradDuringJoin:
    def test_join_builds_no_graph_nodes(self, fitted_setup, monkeypatch):
        *_, model = fitted_setup
        assert model.use_compiled
        tracked = []
        original = tensor_mod.Tensor._make

        def spy(data, parents, backward_fn):
            if any(p.requires_grad for p in parents):
                tracked.append(parents)
            return original(data, parents, backward_fn)

        monkeypatch.setattr(tensor_mod.Tensor, "_make", staticmethod(spy))
        IncompletenessJoin(model, seed=0).run()
        assert tracked == []

    def test_autograd_backend_does_build_graphs(self, fitted_setup, monkeypatch):
        """Sanity: the spy catches graphs when the old path is forced."""
        *_, model = fitted_setup
        tracked = []
        original = tensor_mod.Tensor._make

        def spy(data, parents, backward_fn):
            if any(p.requires_grad for p in parents):
                tracked.append(1)
            return original(data, parents, backward_fn)

        monkeypatch.setattr(tensor_mod.Tensor, "_make", staticmethod(spy))
        model.inference_backend = "autograd"
        try:
            IncompletenessJoin(model, seed=0).run()
        finally:
            model.inference_backend = "compiled"
        assert len(tracked) > 0


# ----------------------------------------------------------------------
# Chunked execution
# ----------------------------------------------------------------------

def _canonical(completed):
    cols = completed.result.columns
    keys = sorted(k for k in cols if k.endswith(".id"))
    order = np.lexsort(tuple(np.asarray(cols[k]) for k in keys))
    return (
        {k: np.asarray(v)[order] for k, v in cols.items()},
        completed.result.effective_weights()[order],
        completed.target_synthesized()[order],
    )


@pytest.mark.slow
class TestChunkedJoin:
    @pytest.mark.parametrize("chunk_size", [3, 17, 1000000])
    def test_chunked_join_identical_to_unchunked(self, fitted_setup, chunk_size):
        *_, model = fitted_setup
        full = IncompletenessJoin(model, seed=7).run()
        chunked = IncompletenessJoin(model, seed=7, chunk_size=chunk_size).run()
        assert chunked.num_rows == full.num_rows
        assert chunked.num_synthesized == full.num_synthesized
        cols_a, w_a, syn_a = _canonical(full)
        cols_b, w_b, syn_b = _canonical(chunked)
        for name in cols_a:
            np.testing.assert_array_equal(cols_a[name], cols_b[name])
        np.testing.assert_array_equal(w_a, w_b)
        np.testing.assert_array_equal(syn_a, syn_b)

    def test_chunked_ssar_join_identical(self, fitted_ssar):
        full = IncompletenessJoin(fitted_ssar, seed=3).run()
        chunked = IncompletenessJoin(fitted_ssar, seed=3, chunk_size=13).run()
        cols_a, w_a, _ = _canonical(full)
        cols_b, w_b, _ = _canonical(chunked)
        for name in cols_a:
            np.testing.assert_array_equal(cols_a[name], cols_b[name])
        np.testing.assert_array_equal(w_a, w_b)

    @pytest.fixture(scope="class")
    def fitted_dangling(self):
        """A path whose n:1 hop has dangling FKs (removed landlords)."""
        db = generate_housing(HousingConfig(seed=0, num_neighborhoods=30,
                                            num_landlords=120,
                                            apartments_per_neighborhood=6.0))
        dataset = make_incomplete(
            db, [RemovalSpec("landlord", "landlord_response_rate", 0.5, 0.4)],
            drop_dangling_links=False,  # keep apartments pointing at removed
            seed=1,                     # landlords: dangling FK evidence
        )
        encoders = build_encoders(dataset.incomplete, num_bins=8)
        layout = PathLayout(dataset.incomplete, dataset.annotation,
                            CompletionPath(("apartment", "landlord")), encoders)
        model = ARCompletionModel(layout, ModelConfig(hidden=(32, 32), train=FAST))
        model.fit()
        return model

    def test_chunked_dangling_parents_identical(self, fitted_dangling):
        """Chunks that split a dangling key's children must still synthesize
        the same shared parent (regression: the parent used to be sampled
        from the chunk-local first child's prefix)."""
        full = IncompletenessJoin(fitted_dangling, seed=7).run()
        chunked = IncompletenessJoin(fitted_dangling, seed=7, chunk_size=3).run()
        assert full.num_synthesized.get("landlord", 0) > 0  # branch exercised
        assert chunked.num_synthesized == full.num_synthesized
        cols_a, w_a, syn_a = _canonical(full)
        cols_b, w_b, syn_b = _canonical(chunked)
        for name in cols_a:
            np.testing.assert_array_equal(cols_a[name], cols_b[name])
        np.testing.assert_array_equal(w_a, w_b)
        np.testing.assert_array_equal(syn_a, syn_b)

    def test_seed_still_changes_output(self, fitted_setup):
        *_, model = fitted_setup
        a = IncompletenessJoin(model, seed=1).run()
        b = IncompletenessJoin(model, seed=2).run()
        assert a.num_rows != b.num_rows or not np.array_equal(
            np.sort(np.asarray(a.result.resolve("tb.b"))),
            np.sort(np.asarray(b.result.resolve("tb.b"))),
        )

    def test_chunk_slices(self):
        assert list(rt_rng.chunk_slices(10, None)) == [slice(0, 10)]
        assert list(rt_rng.chunk_slices(10, 0)) == [slice(0, 10)]
        assert list(rt_rng.chunk_slices(10, 4)) == [
            slice(0, 4), slice(4, 8), slice(8, 10)
        ]
        assert list(rt_rng.chunk_slices(10, 100)) == [slice(0, 10)]


# ----------------------------------------------------------------------
# Counter-based random streams
# ----------------------------------------------------------------------

class TestRuntimeRng:
    def test_draw_advances_counters(self):
        seed = rt_rng.fold_seed(0)
        streams = rt_rng.root_streams(np.arange(5))
        counters = np.zeros(5, dtype=np.uint64)
        first = rt_rng.draw(seed, streams, counters, 2)
        assert counters.tolist() == [2] * 5
        second = rt_rng.draw(seed, streams, counters, 2)
        assert not np.array_equal(first, second)

    def test_uniforms_pure_function(self):
        seed = rt_rng.fold_seed(42)
        streams = rt_rng.root_streams(np.arange(8))
        counters = np.arange(8, dtype=np.uint64)
        a = rt_rng.uniforms(seed, streams, counters, 3)
        b = rt_rng.uniforms(seed, streams, counters, 3)
        np.testing.assert_array_equal(a, b)
        assert ((a >= 0) & (a < 1)).all()

    def test_derived_streams_distinct(self):
        parents = rt_rng.root_streams(np.arange(100))
        children = rt_rng.derive_streams(
            np.repeat(parents, 3), rt_rng.TAG_SYNTH, np.tile(np.arange(3), 100)
        )
        assert len(np.unique(children)) == 300
        siblings = rt_rng.derive_streams(parents, rt_rng.TAG_CHILD, np.arange(100))
        assert len(np.intersect1d(children, siblings)) == 0

    def test_key_streams_independent_of_position(self):
        keys = np.array([10, 20, 30])
        a = rt_rng.key_streams(rt_rng.TAG_KEY, keys)
        b = rt_rng.key_streams(rt_rng.TAG_KEY, keys[::-1])[::-1]
        np.testing.assert_array_equal(a, b)


# ----------------------------------------------------------------------
# JoinCache
# ----------------------------------------------------------------------

class TestJoinCache:
    def test_lru_eviction_order(self):
        cache = JoinCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1      # refresh "a" → "b" is now LRU
        cache.put("c", 3)
        assert cache.contains("a") and cache.contains("c")
        assert not cache.contains("b")
        assert cache.stats.evictions == 1

    def test_stats_counters(self):
        cache = JoinCache(capacity=4)
        assert cache.get("missing") is None
        cache.put("x", 42)
        assert cache.get("x") == 42
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5
        assert cache.stats.requests == 2
        assert set(cache.stats.as_dict()) == {
            "hits", "misses", "evictions", "invalidations", "hit_rate"
        }

    def test_contains_is_pure_probe(self):
        cache = JoinCache(capacity=2)
        cache.put("a", 1)
        before = (cache.stats.hits, cache.stats.misses)
        assert cache.contains("a")
        assert not cache.contains("b")
        assert (cache.stats.hits, cache.stats.misses) == before

    def test_invalidate_clears_entries(self):
        cache = JoinCache(capacity=2)
        cache.put("a", 1)
        cache.invalidate()
        assert len(cache) == 0
        assert cache.stats.invalidations == 1
        cache.invalidate()  # empty → not counted again
        assert cache.stats.invalidations == 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            JoinCache(capacity=0)

    def test_put_updates_existing_key(self):
        cache = JoinCache(capacity=2)
        cache.put("a", 1)
        cache.put("a", 9)
        assert cache.get("a") == 9
        assert len(cache) == 1


@pytest.mark.slow
class TestEngineCache:
    @pytest.fixture(scope="class")
    def engine_dataset(self):
        db = generate_synthetic(SyntheticConfig(num_parents=200,
                                                predictability=0.9, seed=0))
        dataset = make_incomplete(db, [RemovalSpec("tb", "b", 0.5, 0.4)],
                                  tf_keep_rate=0.5, seed=1)
        config = ReStoreConfig(
            model=ModelConfig(hidden=(32, 32), train=FAST),
            join_cache_size=2,
        )
        engine = ReStore.from_dataset(dataset, config).fit()
        return engine, dataset

    def test_completed_join_cached_with_stats(self, engine_dataset):
        engine, _ = engine_dataset
        engine.clear_cache()
        model = engine.candidates("tb")[0].model
        first = engine.completed_join(model)
        again = engine.completed_join(model)
        assert again is first
        assert engine.cache_stats.hits == 1
        assert engine.cache_stats.misses == 1
        assert engine.cache_hits == 1

    def test_refit_invalidates_join_cache(self, engine_dataset):
        engine, _ = engine_dataset
        model = engine.candidates("tb")[0].model
        engine.completed_join(model)
        assert len(engine.join_cache) > 0
        engine.fit(targets=["tb"])
        assert len(engine.join_cache) == 0
        assert engine.cache_stats.invalidations >= 1

    def test_cache_key_includes_seed(self, engine_dataset):
        engine, _ = engine_dataset
        engine.clear_cache()
        model = engine.candidates("tb")[0].model
        engine.completed_join(model)
        key = engine._join_key(model)
        assert key[2] == engine.config.seed
        assert key[3] == engine.config.approximate_replacement

    def test_chunked_engine_matches_unchunked(self, engine_dataset):
        engine, dataset = engine_dataset
        engine.clear_cache()
        model = engine.candidates("tb")[0].model
        unchunked = engine.completed_join(model)
        chunked_config = ReStoreConfig(
            model=ModelConfig(hidden=(32, 32), train=FAST),
            chunk_size=7,
        )
        chunked_engine = ReStore.from_dataset(dataset, chunked_config)
        chunked = IncompletenessJoin(
            model, seed=chunked_engine.config.seed,
            chunk_size=chunked_engine.config.chunk_size,
        ).run()
        cols_a, w_a, _ = _canonical(unchunked)
        cols_b, w_b, _ = _canonical(chunked)
        for name in cols_a:
            np.testing.assert_array_equal(cols_a[name], cols_b[name])
        np.testing.assert_array_equal(w_a, w_b)
